package federation

import (
	"fmt"
	"sync"

	"coca/internal/protocol"
)

// syncFrameBuf recycles the frame buffer SyncNodes encodes deltas into:
// the encoding exercises (and measures) the exact wire path, but the bytes
// themselves are only needed for their length, so one reused buffer per
// concurrent sync suffices.
var syncFrameBuf = sync.Pool{New: func() any { return new([]byte) }}

// SyncNodes executes one federation sync round over an in-process fleet,
// deterministically. It runs in two phases so the outcome is a pure
// function of the pre-sync state:
//
//  1. every node collects its delta for every peer link (ascending
//     (sender, receiver) order) — nothing is applied yet, so collection
//     order cannot influence content;
//  2. every node applies the deltas addressed to it in ascending sender
//     id order — the deterministic peer-id merge rule.
//
// Each non-empty delta is encoded as its protocol frame even though no
// wire is involved: the frame length is the sync-traffic measurement the
// federation experiments report, and encoding exercises the exact wire
// path. Empty deltas are skipped (a wire sender would not dial for
// nothing).
func SyncNodes(nodes []*Node, topo *Topology) error {
	if len(nodes) != topo.NumNodes() {
		return fmt.Errorf("federation: %d nodes under a %d-node topology", len(nodes), topo.NumNodes())
	}
	byID := make(map[int]*Node, len(nodes))
	order := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if _, dup := byID[n.ID()]; dup {
			return fmt.Errorf("federation: duplicate node id %d", n.ID())
		}
		byID[n.ID()] = n
		order = append(order, n.ID())
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			return fmt.Errorf("federation: nodes must be ordered by id (got %d before %d)", order[i-1], order[i])
		}
	}
	if len(nodes) != len(topo.peers) {
		return fmt.Errorf("federation: topology covers %d nodes, fleet has %d", len(topo.peers), len(nodes))
	}
	for _, n := range nodes {
		if n.cfg.Relay != topo.Forwarding() {
			return fmt.Errorf("federation: node %d has Relay=%v under a %s topology (want %v): evidence would %s",
				n.ID(), n.cfg.Relay, topo.Kind(), topo.Forwarding(),
				map[bool]string{true: "never cross the relay hop", false: "re-circulate the mesh"}[topo.Forwarding()])
		}
	}

	type exchange struct {
		from, to int
		delta    Delta
		bytes    int
	}
	var exchanges []exchange
	buf := syncFrameBuf.Get().(*[]byte)
	defer syncFrameBuf.Put(buf)
	msg := protocol.Message{Type: protocol.TypePeerDelta, PeerDelta: &protocol.PeerDelta{}}

	// Phase 1: collect. Topology indices are positions in the ordered
	// node slice, so node ids and topology nodes line up.
	for i, n := range nodes {
		for _, p := range topo.Peers(i) {
			peer := nodes[p]
			d := n.CollectDelta(peer.ID())
			if d.Empty() {
				continue
			}
			*msg.PeerDelta = protocol.PeerDelta{
				NodeID: int32(n.ID()),
				Epoch:  n.Epoch(),
				Cells:  d.Cells,
				Freq:   d.Freq,
			}
			frame, err := protocol.AppendEncode((*buf)[:0], &msg)
			if err != nil {
				return fmt.Errorf("federation: encode delta %d→%d: %w", n.ID(), peer.ID(), err)
			}
			*buf = frame[:0]
			exchanges = append(exchanges, exchange{from: n.ID(), to: peer.ID(), delta: d, bytes: len(frame)})
		}
	}

	// Phase 2: apply, receiver-major then sender order (exchanges were
	// generated sender-major over ascending ids, so a stable selection by
	// receiver preserves ascending sender order per receiver).
	for _, n := range nodes {
		for _, ex := range exchanges {
			if ex.to != n.ID() {
				continue
			}
			if _, err := n.HandlePeerDelta(&protocol.PeerDelta{
				NodeID: int32(ex.from),
				Epoch:  byID[ex.from].Epoch(),
				Cells:  ex.delta.Cells,
				Freq:   ex.delta.Freq,
			}); err != nil {
				return fmt.Errorf("federation: apply delta %d→%d: %w", ex.from, ex.to, err)
			}
			n.NotePeerRecvBytes(ex.bytes)
			byID[ex.from].CommitDelta(ex.to, ex.delta, ex.bytes)
		}
	}

	// Phase 3: close the round on every node.
	fastForward := !topo.Forwarding()
	for _, n := range nodes {
		n.EndSync(fastForward)
	}
	return nil
}
