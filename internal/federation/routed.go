package federation

import (
	"context"
	"fmt"

	"coca/internal/core"
	"coca/internal/engine"
	"coca/internal/metrics"
	"coca/internal/routing"
	"coca/internal/semantics"
	"coca/internal/stream"
)

// RoutedConfig assembles a routed multi-edge-server deployment: the
// federation fleet of Cluster fronted by a routing.Router instead of a
// static client→server assignment.
type RoutedConfig struct {
	// NumServers is the edge-server count.
	NumServers int
	// NumClients is the total fleet size.
	NumClients int
	// Routing configures the control-plane tier (policy, shards,
	// breakers, admission).
	Routing routing.Config
	// RebalanceEvery runs a semantic rebalance pass after every N-th
	// round barrier; 0 disables (only meaningful under PolicySemantic).
	RebalanceEvery int
	// Topology is the peer graph kind (default Mesh).
	Topology Kind
	// SyncEvery runs a federation sync round after every SyncEvery-th
	// round barrier; 0 disables peer sync.
	SyncEvery int
	// RemoteFreqWeight is applied to every node (see ClusterConfig).
	RemoteFreqWeight float64
	// Client is the per-client configuration template (ID/EnvSeed
	// assigned per client).
	Client core.ClientConfig
	// Server configures every edge server (shared Seed — the paper's
	// shared global dataset).
	Server core.ServerConfig
	// ServerInit optionally shares one pre-built construction across the
	// fleet (and across experiment arms); see ClusterConfig.ServerInit.
	ServerInit *core.ServerInit
	// Stream describes the fleet-wide workload.
	Stream stream.Config
	// Rounds and SkipRounds control run length and warm-up exclusion.
	Rounds, SkipRounds int
	// BatchSize drives each client's frames through the batched hot path.
	BatchSize int
	// OnRound, when set, runs after every round barrier (before sync and
	// rebalance) — the experiment hook for breaker trips and probes.
	OnRound func(round int)
}

// RoutedCluster is a federated fleet whose clients reach their servers
// through the routing tier: every session is opened against the Router,
// so placement is dynamic — clients migrate live on breaker trips and
// semantic rebalances — while the servers still federate through the
// usual sync plane at round barriers.
//
// Unlike Cluster's per-server runners, one flat engine runner drives
// the whole fleet: placement changes round to round, but the runner's
// post-barrier upload pass stays in ascending fleet id, so the global
// merge sequence — and every metric — remains deterministic for a fixed
// seed regardless of where each client currently lives.
type RoutedCluster struct {
	Space   *semantics.Space
	Nodes   []*Node
	Router  *routing.Router
	Clients []*core.Client

	topo   *Topology
	runner *engine.Runner
	cfg    RoutedConfig
}

// NewRoutedCluster builds the servers, the router over them, and the
// client fleet opened through the router.
func NewRoutedCluster(space *semantics.Space, cfg RoutedConfig) (*RoutedCluster, error) {
	if cfg.NumServers < 1 {
		return nil, fmt.Errorf("federation: routed cluster needs at least one server, got %d", cfg.NumServers)
	}
	if cfg.NumClients < 1 {
		return nil, fmt.Errorf("federation: routed cluster needs at least one client, got %d", cfg.NumClients)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("federation: routed cluster rounds %d < 1", cfg.Rounds)
	}
	if cfg.SyncEvery < 0 || cfg.RebalanceEvery < 0 {
		return nil, fmt.Errorf("federation: negative cadence (sync %d, rebalance %d)", cfg.SyncEvery, cfg.RebalanceEvery)
	}
	if cfg.Topology == "" {
		cfg.Topology = Mesh
	}
	topo, err := NewTopology(cfg.Topology, cfg.NumServers)
	if err != nil {
		return nil, err
	}
	if cfg.Stream.NumClients == 0 {
		cfg.Stream.NumClients = cfg.NumClients
	}
	if cfg.Stream.NumClients != cfg.NumClients {
		return nil, fmt.Errorf("federation: stream has %d clients, cluster has %d", cfg.Stream.NumClients, cfg.NumClients)
	}
	if cfg.Stream.Dataset == nil {
		cfg.Stream.Dataset = space.DS
	}
	part, err := stream.NewPartition(cfg.Stream)
	if err != nil {
		return nil, fmt.Errorf("federation: routed cluster workload: %w", err)
	}

	c := &RoutedCluster{Space: space, topo: topo, cfg: cfg}
	init := cfg.ServerInit
	if init == nil {
		init = core.BuildServerInit(space, cfg.Server)
	}
	targets := make([]core.Coordinator, 0, cfg.NumServers)
	for s := 0; s < cfg.NumServers; s++ {
		srv := core.NewServerFrom(space, cfg.Server, init)
		node := NewNode(srv, NodeConfig{ID: s, Relay: topo.Forwarding(), RemoteFreqWeight: cfg.RemoteFreqWeight})
		c.Nodes = append(c.Nodes, node)
		targets = append(targets, node)
	}
	c.Router = routing.NewRouter(targets, cfg.Routing)

	frames := cfg.Client.RoundFrames
	if frames == 0 {
		frames = core.DefaultRoundFrames
	}
	engines := make([]engine.Engine, 0, cfg.NumClients)
	gens := make([]*stream.Generator, 0, cfg.NumClients)
	for id := 0; id < cfg.NumClients; id++ {
		ccfg := cfg.Client
		ccfg.ID = id
		if ccfg.EnvSeed == 0 {
			ccfg.EnvSeed = uint64(id) + 1
		}
		client, err := core.NewClient(context.Background(), space, c.Router, ccfg)
		if err != nil {
			return nil, err
		}
		c.Clients = append(c.Clients, client)
		engines = append(engines, client)
		gens = append(gens, part.Client(id))
	}
	c.runner, err = engine.NewRunner(engines, gens, engine.RunConfig{
		Rounds:         cfg.Rounds,
		FramesPerRound: frames,
		SkipRounds:     cfg.SkipRounds,
		Concurrent:     true,
		BatchSize:      cfg.BatchSize,
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Topology returns the cluster's peer graph.
func (c *RoutedCluster) Topology() *Topology { return c.topo }

// PerClient returns the per-client metric accumulators (live).
func (c *RoutedCluster) PerClient() []*metrics.Accumulator { return c.runner.PerClient() }

// Combined merges the fleet's accumulators into a fresh one (callable
// mid-run for per-round deltas).
func (c *RoutedCluster) Combined() *metrics.Accumulator { return c.runner.Combined() }

// Run executes the configured rounds: each round the flat runner drives
// every client (allocations and inference in parallel, uploads ordered
// at the barrier), then the OnRound hook fires, peers sync at the
// SyncEvery cadence, and the router rebalances at the RebalanceEvery
// cadence — ordered migrations land at each client's next allocation,
// i.e. the following round's begin.
func (c *RoutedCluster) Run() (combined *metrics.Accumulator, err error) {
	defer c.runner.Close()
	for round := 0; round < c.cfg.Rounds; round++ {
		if err := c.runner.RunRound(round); err != nil {
			return nil, fmt.Errorf("federation: routed round %d: %w", round, err)
		}
		if c.cfg.OnRound != nil {
			c.cfg.OnRound(round)
		}
		if c.cfg.SyncEvery > 0 && (round+1)%c.cfg.SyncEvery == 0 {
			if err := SyncNodes(c.Nodes, c.topo); err != nil {
				return nil, err
			}
		}
		if c.cfg.RebalanceEvery > 0 && (round+1)%c.cfg.RebalanceEvery == 0 {
			c.Router.Rebalance()
		}
	}
	return c.runner.Combined(), nil
}

// SyncStats aggregates the fleet's sync counters.
func (c *RoutedCluster) SyncStats() SyncStats {
	var total SyncStats
	for _, n := range c.Nodes {
		total.add(n.Stats())
	}
	return total
}

// Close closes every client session (the runner is closed by Run).
func (c *RoutedCluster) Close() {
	for _, cl := range c.Clients {
		_ = cl.Close()
	}
}
