package federation

import (
	"testing"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/model"
	"coca/internal/routing"
	"coca/internal/semantics"
	"coca/internal/stream"
)

func routedConfig(policy routing.Policy) RoutedConfig {
	ds := dataset.ESC50().Subset(12)
	return RoutedConfig{
		NumServers: 4,
		NumClients: 8,
		Routing:    routing.Config{Policy: policy, ShardSize: 3, Seed: 11},
		Topology:   Mesh,
		SyncEvery:  2,
		Client:     core.ClientConfig{Theta: 0.035, Budget: 40, RoundFrames: 30},
		Server:     core.ServerConfig{Theta: 0.035, Seed: 3, ProfileSamples: 200, InitSamplesPerClass: 16},
		Stream: stream.Config{
			Dataset:         ds,
			SceneMeanFrames: 15,
			WorkingSetSize:  6,
			WorkingSetChurn: 0.1,
			NonIIDLevel:     4,
			Seed:            9,
		},
		Rounds: 6,
	}
}

// TestRoutingSmoke drives routed clusters — one per placement policy —
// over a 4-node in-memory fleet: the CI routing smoke alongside the
// forced-migration TCP run at the repo root.
func TestRoutingSmoke(t *testing.T) {
	space := semantics.NewSpace(dataset.ESC50().Subset(12), model.VGG16BN())
	for _, policy := range []routing.Policy{routing.PolicyHash, routing.PolicySemantic} {
		cfg := routedConfig(policy)
		cfg.ServerInit = core.BuildServerInit(space, cfg.Server)
		if policy == routing.PolicySemantic {
			cfg.RebalanceEvery = 2
		}
		cluster, err := NewRoutedCluster(space, cfg)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		combined, err := cluster.Run()
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		sum := combined.Summary()
		if sum.Frames != cfg.NumClients*cfg.Rounds*cfg.Client.RoundFrames {
			t.Errorf("%s: %d frames, want %d", policy, sum.Frames, cfg.NumClients*cfg.Rounds*cfg.Client.RoundFrames)
		}
		if sum.HitRatio <= 0 {
			t.Errorf("%s: fleet hit ratio %.3f, want > 0", policy, sum.HitRatio)
		}
		// Placement: every client is on a live server inside its shard.
		for id := 0; id < cfg.NumClients; id++ {
			s := cluster.Router.Lookup(id)
			if s < 0 || s >= cfg.NumServers {
				t.Errorf("%s: client %d on server %d", policy, id, s)
			}
		}
		if st := cluster.Router.Stats(); st.Opens < cfg.NumClients {
			t.Errorf("%s: %d opens for %d clients", policy, st.Opens, cfg.NumClients)
		}
		cluster.Close()
	}
}

// TestRoutedClusterBrownOutRecovers trips one server's breaker mid-run
// and requires the fleet to finish with every client off that server.
func TestRoutedClusterBrownOutRecovers(t *testing.T) {
	space := semantics.NewSpace(dataset.ESC50().Subset(12), model.VGG16BN())
	cfg := routedConfig(routing.PolicyHash)
	var cluster *RoutedCluster
	cfg.OnRound = func(round int) {
		if round == 2 {
			cluster.Router.TripBreaker(0)
		}
	}
	var err error
	cluster, err = NewRoutedCluster(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	combined, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}
	if combined.Summary().Frames == 0 {
		t.Fatal("no frames recorded")
	}
	for id := 0; id < cfg.NumClients; id++ {
		if cluster.Router.Lookup(id) == 0 {
			t.Errorf("client %d still on browned-out server 0", id)
		}
	}
	if st := cluster.Router.Stats(); st.Migrations == 0 {
		t.Error("brown-out caused no migrations")
	}
}
