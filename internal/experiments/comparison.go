package experiments

import (
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/xrand"
)

// methodRow measures one method on one workload.
type methodRow struct {
	name string
	lat  float64
	acc  float64
}

// compareMethods runs the five systems of §VI-B on one shared workload and
// returns their rows in paper order. strict selects the <3% accuracy-loss
// operating point; false the <5% one.
func compareMethods(space *semantics.Space, w workload, clients, budget, framesPerRound, rounds, skip int, strict bool, seed uint64) ([]methodRow, error) {
	theta := thetaFor(space.Arch, strict)
	ms := newMethodSet(space, clients, theta, budget, framesPerRound, seed)

	rows := make([]methodRow, 0, 5)
	measure := func(name string, engines []engine.Engine) error {
		s, err := runEngines(engines, w, rounds, framesPerRound, skip)
		if err != nil {
			return err
		}
		rows = append(rows, methodRow{name: name, lat: s.AvgLatencyMs, acc: s.Accuracy})
		return nil
	}

	if err := measure("Edge-Only", ms.edgeOnly()); err != nil {
		return nil, err
	}
	lc, err := ms.learnedCache(strict)
	if err != nil {
		return nil, err
	}
	if err := measure("LearnedCache", lc); err != nil {
		return nil, err
	}
	fc, err := ms.foggyCache(strict)
	if err != nil {
		return nil, err
	}
	if err := measure("FoggyCache", fc); err != nil {
		return nil, err
	}
	sm, err := ms.smtm(theta)
	if err != nil {
		return nil, err
	}
	if err := measure("SMTM", sm); err != nil {
		return nil, err
	}
	cc, _, err := ms.coca(theta, nil)
	if err != nil {
		return nil, err
	}
	if err := measure("CoCa", cc); err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2 reproduces Table II: latency and accuracy on a 100-class UCF101
// subset under the <3% and <5% accuracy-loss SLOs, for VGG16_BN and
// ResNet152.
func Table2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(100)
	out := metrics.NewTable("Table II — latency under SLO accuracy-loss budgets (UCF101-100)",
		"Model", "Method", "<3% Lat.(ms)", "<3% Acc.(%)", "<5% Lat.(ms)", "<5% Acc.(%)")
	w := opts.workload(ds)
	w.classWeights = xrand.LongTailWeights(ds.NumClasses, 10)
	w.nonIID = 1
	w.workingSet = 20

	for _, arch := range []*model.Arch{model.VGG16BN(), model.ResNet152()} {
		space := semantics.NewSpace(ds, arch)
		strictRows, err := compareMethods(space, w, 8, 300, opts.frames(300), opts.rounds(6), 1, true, opts.Seed)
		if err != nil {
			return nil, err
		}
		looseRows, err := compareMethods(space, w, 8, 300, opts.frames(300), opts.rounds(6), 1, false, opts.Seed)
		if err != nil {
			return nil, err
		}
		for i, r := range strictRows {
			out.AddRow(arch.Name, r.name,
				metrics.Fmt(r.lat, 2), metrics.Pct(r.acc, 2),
				metrics.Fmt(looseRows[i].lat, 2), metrics.Pct(looseRows[i].acc, 2))
		}
	}
	out.AddNote("paper: CoCa lowest latency under both budgets (23.05/34.45 ms vs Edge-Only 29.94/62.85 ms); order CoCa < SMTM < FoggyCache < LearnedCache < Edge-Only")
	return &Result{ID: "table2", Table: out}, nil
}

// Table3 reproduces Table III: ResNet101 on ImageNet-100 with a uniform
// versus a long-tail (ρ=90) class distribution, all five methods.
func Table3(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.ImageNet100()
	arch := model.ResNet101()
	space := semantics.NewSpace(ds, arch)
	out := metrics.NewTable("Table III — uniform vs long-tail (ResNet101, ImageNet-100)",
		"Method", "Unif Lat.(ms)", "Unif Acc.(%)", "LT Lat.(ms)", "LT Acc.(%)")

	uniform := opts.workload(ds)
	longtail := opts.workload(ds)
	longtail.classWeights = xrand.LongTailWeights(ds.NumClasses, 90)

	uniRows, err := compareMethods(space, uniform, 8, 300, opts.frames(300), opts.rounds(6), 1, true, opts.Seed)
	if err != nil {
		return nil, err
	}
	ltRows, err := compareMethods(space, longtail, 8, 300, opts.frames(300), opts.rounds(6), 1, true, opts.Seed)
	if err != nil {
		return nil, err
	}
	for i, r := range uniRows {
		out.AddRow(r.name,
			metrics.Fmt(r.lat, 2), metrics.Pct(r.acc, 2),
			metrics.Fmt(ltRows[i].lat, 2), metrics.Pct(ltRows[i].acc, 2))
	}
	out.AddNote("paper: CoCa best in both groups; CoCa and SMTM faster on the long-tail group (CoCa 27.04 vs 28.17 ms)")
	return &Result{ID: "table3", Table: out}, nil
}

// Fig7 reproduces Fig. 7: average latency under non-IID levels
// p ∈ {0,1,2,10} for ResNet101/UCF101-100 and AST/ESC-50, all methods.
func Fig7(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	out := metrics.NewTable("Fig. 7 — latency (ms) under non-IID levels",
		"Setup", "Method", "p=0", "p=1", "p=2", "p=10")
	cases := []struct {
		name string
		ds   *dataset.Spec
		arch *model.Arch
	}{
		{"ResNet101/UCF101-100", dataset.UCF101().Subset(100), model.ResNet101()},
		{"AST/ESC-50", dataset.ESC50(), model.ASTBase()},
	}
	levels := []float64{0, 1, 2, 10}
	for _, c := range cases {
		space := semantics.NewSpace(c.ds, c.arch)
		// rows[method][level]
		lat := make(map[string][]string)
		order := []string{}
		for _, p := range levels {
			w := opts.workload(c.ds)
			w.nonIID = p
			// A larger working set lets the client's distribution
			// concentration (the non-IID level) govern effective
			// stream variety.
			w.workingSet = 25
			rows, err := compareMethods(space, w, 8, 300, opts.frames(300), opts.rounds(5), 1, true, opts.Seed)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if _, ok := lat[r.name]; !ok {
					order = append(order, r.name)
				}
				lat[r.name] = append(lat[r.name], metrics.Fmt(r.lat, 2))
			}
		}
		for _, name := range order {
			cells := append([]string{c.name, name}, lat[name]...)
			out.AddRow(cells...)
		}
	}
	out.AddNote("paper: Edge-Only flat across p; caching methods accelerate as non-IID level rises; CoCa lowest everywhere (AST: 29–33%% below Edge-Only)")
	return &Result{ID: "fig7", Table: out}, nil
}
