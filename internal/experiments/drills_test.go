package experiments

// Acceptance drills for the overload tier (ISSUE 9): the flash-crowd
// and brown-out arms are pure functions of their seed, so the survival
// properties are asserted as exact-threshold tests rather than eyeballed
// from the table.

import (
	"testing"
)

func TestDrillsFlashCrowdAcceptance(t *testing.T) {
	opts := Options{Scale: 1, Seed: 1}
	twoX := runFlashCrowd(flashArm(opts, 2, true))
	naive := runFlashCrowd(flashArm(opts, 2, false))

	// Under 2× overload, goodput stays within 20% of capacity: no
	// congestion collapse.
	if min := int(0.8 * float64(twoX.capacity)); twoX.goodput < min {
		t.Errorf("2× controlled goodput %d below 80%% of capacity %d", twoX.goodput, twoX.capacity)
	}
	// The identical schedule without the controls collapses — the
	// contrast that proves the controls, not the workload, carry the arm.
	if naive.goodput*2 > naive.capacity {
		t.Errorf("2× uncontrolled goodput %d did not collapse (capacity %d); the drill's overload regime is too gentle", naive.goodput, naive.capacity)
	}
	// Expired work is dropped at dequeue — the deadline travels and pays.
	if twoX.expired == 0 {
		t.Error("controlled 2× arm dropped no expired work at dequeue")
	}
	// Served-request p99 queue wait is bounded by the client deadline
	// (anything that would wait longer is dropped, not served late).
	if dl := flashArm(opts, 2, true).deadline; twoX.p99Wait > dl {
		t.Errorf("controlled 2× p99 wait %v exceeds the %v deadline", twoX.p99Wait, dl)
	}
	if naive.p99Wait < 10*flashArm(opts, 2, false).deadline {
		t.Errorf("uncontrolled p99 wait %v suspiciously low; overload regime too gentle", naive.p99Wait)
	}
	// Shed-before-queue: admission absorbs the overload, so the
	// controlled queue's high-water mark stays an order of magnitude
	// below the uncontrolled one and near the configured backstop.
	if twoX.shed == 0 {
		t.Error("controlled 2× arm shed nothing")
	}
	if twoX.maxDepth*10 > naive.maxDepth {
		t.Errorf("controlled high-water depth %d not well below uncontrolled %d", twoX.maxDepth, naive.maxDepth)
	}
	if backstop := drillShedConfig().MaxDepth; twoX.maxDepth > 2*backstop {
		t.Errorf("controlled depth %d far past the %d backstop", twoX.maxDepth, backstop)
	}

	// Determinism: the same seed replays the same run, a different seed
	// draws a different arrival schedule.
	again := runFlashCrowd(flashArm(opts, 2, true))
	if again != twoX {
		t.Errorf("same seed diverged: %+v vs %+v", again, twoX)
	}
	other := runFlashCrowd(flashArm(Options{Scale: 1, Seed: 2}, 2, true))
	if other == twoX {
		t.Error("different seed reproduced the identical run")
	}
}

func TestDrillsBrownoutAcceptance(t *testing.T) {
	bo, err := runBrownout(Options{Scale: 0.5, Seed: 1}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// The shield engaged: the fleet served stale rounds through the
	// outage instead of failing the run.
	if bo.servedStale == 0 {
		t.Fatal("no stale rounds served through the brown-out")
	}
	// Staleness stays within the configured bound.
	if bo.maxStale > bo.staleBound {
		t.Errorf("observed staleness %d rounds exceeds the %d bound", bo.maxStale, bo.staleBound)
	}
	if bo.maxStale < bo.brownLen {
		t.Errorf("observed staleness %d below the %d-round outage; shield not exercised end-to-end", bo.maxStale, bo.brownLen)
	}
	// Hit-ratio floor while degraded: the stale allocation keeps serving
	// near the healthy level (cells are immutable-once-published).
	if bo.brownHit < 0.8*bo.preHit {
		t.Errorf("brown-out hit ratio %.4f below 80%% of healthy %.4f", bo.brownHit, bo.preHit)
	}
	if bo.preHit <= 0 {
		t.Fatal("healthy hit ratio is zero; drill workload broken")
	}
}

// TestDrillsDeadlineCeiling pins the invariant the p99 bound relies
// on even at the deepest overload: a request whose wait reaches the
// deadline is dropped at dequeue, never served, so served waits cannot
// exceed the deadline.
func TestDrillsDeadlineCeiling(t *testing.T) {
	cfg := flashArm(Options{Scale: 1, Seed: 3}.withDefaults(), 4, true)
	fr := runFlashCrowd(cfg)
	if fr.p99Wait > cfg.deadline {
		t.Errorf("p99 wait %v exceeds deadline %v at 4× overload", fr.p99Wait, cfg.deadline)
	}
	if fr.goodput == 0 || fr.shed == 0 || fr.expired == 0 {
		t.Errorf("4× arm should exercise every control: goodput=%d shed=%d expired=%d", fr.goodput, fr.shed, fr.expired)
	}
}
