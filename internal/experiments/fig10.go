package experiments

import (
	"fmt"
	"sort"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/xrand"
)

// Fig10a reproduces Fig. 10(a): the update-cycle F sweep on VGG16_BN with
// a long-tail 100-class UCF101 workload — latency improves then stabilizes
// for F ≥ 300 while accuracy slowly declines as caches go stale.
func Fig10a(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(100)
	arch := model.VGG16BN()
	space := newSpace(ds, arch)
	theta := thetaFor(arch, true)
	out := metrics.NewTable("Fig. 10(a) — update cycle F (VGG16_BN, long-tail UCF101-100)",
		"F", "Lat.(ms)", "Acc.(%)", "Hit(%)")

	const totalFrames = 5400 // fixed horizon: rounds = horizon / F
	const fleet = 6
	for _, F := range []int{150, 300, 450, 600, 750, 900} {
		frames := opts.frames(F)
		rounds := totalFrames / F
		if rounds < 3 {
			rounds = 3
		}
		skip := 900 / F // warm-up: first ~900 frames
		if skip < 1 {
			skip = 1
		}
		// Per-round coordination: with short cycles, clients contend for
		// the server more often and each round pays the request waiting
		// time (§VI-I); amortized over the round's frames this dominates
		// the small-F regime exactly as the paper reports.
		coord := simulateResponseLatency(arch, ds, fleet*10, opts.Seed) + 300
		ms := newMethodSet(space, fleet, theta, 300, frames, opts.Seed)
		// Drift makes cache freshness matter, so long cycles cost
		// accuracy. Drift advances per wall-clock round, so its
		// per-frame rate is held constant across F values.
		engines, _, err := ms.coca(theta, func(cfg *core.ClusterConfig) {
			cfg.Client.DriftWeight = 0.04
			cfg.Client.DriftPerRound = 0.08 * float64(F) / 300.0
			cfg.Client.CoordPerRoundMs = coord
		})
		if err != nil {
			return nil, err
		}
		w := opts.workload(ds)
		w.classWeights = xrand.LongTailWeights(ds.NumClasses, 90)
		s, err := runEngines(engines, w, opts.rounds(rounds), frames, skip)
		if err != nil {
			return nil, err
		}
		out.AddRow(fmt.Sprintf("%d", F),
			metrics.Fmt(s.AvgLatencyMs, 2),
			metrics.Pct(s.Accuracy, 2),
			metrics.Pct(s.HitRatio, 1))
	}
	out.AddNote("paper: latency falls from 26.54 ms (F=150) to 24.02 ms (F=900) and stabilizes past F=300; accuracy declines slightly")
	return &Result{ID: "fig10a", Table: out}, nil
}

// Fig10b reproduces Fig. 10(b): the cache-request response latency as the
// fleet grows from 60 to 160 clients, for four models.
//
// Rather than instantiating hundreds of full clients, this experiment uses
// a discrete-event queue simulation faithful to the deployment: each
// client issues an allocation request every F frames of inference (its
// round time varies with its own average latency), the server handles
// requests FIFO with a processing cost proportional to the global-table
// work (I × L), and the response latency is queueing delay + processing +
// network round-trip. This matches §VI-I, which measures request/response
// latency under contention, not inference latency.
func Fig10b(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	out := metrics.NewTable("Fig. 10(b) — cache-request response latency vs clients",
		"Clients", "VGG16_BN (ms)", "ResNet50 (ms)", "ResNet101 (ms)", "AST (ms)")

	type modelCase struct {
		arch *model.Arch
		ds   *dataset.Spec
	}
	cases := []modelCase{
		{model.VGG16BN(), dataset.UCF101().Subset(100)},
		{model.ResNet50(), dataset.UCF101().Subset(100)},
		{model.ResNet101(), dataset.UCF101().Subset(100)},
		{model.ASTBase(), dataset.ESC50()},
	}
	clientCounts := []int{60, 80, 100, 120, 140, 160}
	results := make([][]float64, len(cases))
	for ci, c := range cases {
		for _, n := range clientCounts {
			results[ci] = append(results[ci], simulateResponseLatency(c.arch, c.ds, n, opts.Seed))
		}
	}
	for i, n := range clientCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for ci := range cases {
			row = append(row, metrics.Fmt(results[ci][i], 2))
		}
		out.AddRow(row...)
	}
	out.AddNote("paper: ResNet101 response latency rises from 56.70 ms (60 clients) to 60.93 ms (160), +7.46%%")
	return &Result{ID: "fig10b", Table: out}, nil
}

// simulateResponseLatency runs the FIFO queue model for several rounds and
// returns the mean response latency of allocation requests.
func simulateResponseLatency(arch *model.Arch, ds *dataset.Spec, clients int, seed uint64) float64 {
	const (
		F          = 300  // frames per round
		rounds     = 8    // simulated rounds
		networkRTT = 38.0 // ms: request+response transfer incl. the cache payload
	)
	// Server processing: ACA scoring over I classes plus sub-table
	// extraction and merge application over the allocated layers'
	// entries, under the global-cache lock.
	procMs := 0.9 + 0.0045*float64(ds.NumClasses)*float64(arch.NumLayers)
	// Clients' round durations vary with their cache effectiveness; model
	// the average frame latency as 55–75% of the uncached pass.
	r := xrand.New(seed, 0xF10B, uint64(clients), uint64(arch.NumLayers))
	roundDur := make([]float64, clients)
	offset := make([]float64, clients)
	for k := range roundDur {
		frac := 0.55 + 0.20*r.Float64()
		roundDur[k] = float64(F) * arch.TotalLatencyMs() * frac
		// Clients boot at staggered times within their first round.
		offset[k] = r.Float64() * roundDur[k]
	}
	type request struct{ at float64 }
	var reqs []request
	for k := 0; k < clients; k++ {
		for rd := 0; rd < rounds; rd++ {
			reqs = append(reqs, request{at: offset[k] + float64(rd)*roundDur[k]})
		}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].at < reqs[j].at })
	var busyUntil float64
	var total float64
	for _, q := range reqs {
		start := q.at
		if busyUntil > start {
			start = busyUntil
		}
		finish := start + procMs
		busyUntil = finish
		total += (finish - q.at) + networkRTT
	}
	return total / float64(len(reqs))
}
