package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryCompleteAndUnique(t *testing.T) {
	want := []string{"fig1a", "fig1b", "fig2", "table1", "fig5", "fig6",
		"table2", "table3", "fig7", "fig8", "fig9", "fig10a", "fig10b",
		"federation", "routing", "churn", "drills"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	seen := map[string]bool{}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, e.ID, want[i])
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Shape == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("table2")
	if err != nil || e.ID != "table2" {
		t.Fatalf("ByID = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestAllExperimentsRunAtSmallScale executes every registered experiment at
// minimal scale, checking they produce well-formed tables.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Options{Scale: 0.1, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %q", res.ID)
			}
			if len(res.Table.Rows) == 0 {
				t.Fatal("empty table")
			}
			if !strings.Contains(res.Table.String(), res.Table.Columns[0]) {
				t.Fatal("table render broken")
			}
		})
	}
}

// TestFig1bShape asserts the motivation study's qualitative property at
// moderate scale: mid-network hit accuracy exceeds shallow hit accuracy.
func TestFig1bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check")
	}
	res, err := Fig1b(Options{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accAt := func(layer string) float64 {
		for _, row := range res.Table.Rows {
			if row[0] == layer {
				v, _ := strconv.ParseFloat(row[2], 64)
				return v
			}
		}
		return -1
	}
	shallow := accAt("0")
	mid := accAt("12")
	if shallow < 0 || mid < 0 {
		t.Skip("layers without hits at this scale")
	}
	if mid <= shallow {
		t.Fatalf("mid-layer hit accuracy %v not above shallow %v", mid, shallow)
	}
}

// TestTable2Ordering asserts the headline comparative property at moderate
// scale: CoCa has lower latency than Edge-Only and SMTM beats Edge-Only.
func TestTable2Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check")
	}
	res, err := Table2(Options{Scale: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lat := map[string]float64{}
	for _, row := range res.Table.Rows {
		if row[0] == "ResNet152" {
			v, _ := strconv.ParseFloat(row[2], 64)
			lat[row[1]] = v
		}
	}
	if !(lat["CoCa"] < lat["Edge-Only"]) {
		t.Errorf("CoCa %v not below Edge-Only %v", lat["CoCa"], lat["Edge-Only"])
	}
	if !(lat["SMTM"] < lat["Edge-Only"]) {
		t.Errorf("SMTM %v not below Edge-Only %v", lat["SMTM"], lat["Edge-Only"])
	}
	// The CoCa < SMTM margin needs the full warm-up horizon; it is
	// asserted by the full-scale run recorded in EXPERIMENTS.md rather
	// than at this reduced scale.
}
