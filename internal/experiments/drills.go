package experiments

// Failure drills for the overload-survival tier (beyond the paper):
//
// Arm A — flash crowd. A deterministic virtual-time queue simulation
// drives one server (fixed service cost) at 1×/2×/4× its capacity with
// a critical/sheddable request mix, through the same overload.Shedder
// the routing tier embeds, with client deadlines dropped at dequeue.
// The contrast arm runs the identical 2× schedule with the controls
// off: the queue grows without bound and goodput (work completed within
// its deadline) collapses, while the controlled arm sheds speculative
// work early, drops expired work for free and keeps goodput within a
// fraction of capacity.
//
// Arm B — brown-out. A real core cluster (server + fleet) has its
// coordination plane fail injected for a window of rounds; clients run
// with the serve-stale shield armed (MaxStaleRounds) and keep serving
// inference from their last-synced allocation — cells are
// immutable-once-published, so stale reads are safe — with bounded
// staleness and a hit ratio that stays near the healthy level.
//
// Both arms are seed-deterministic; TestDrillsAcceptance asserts the
// numbers this experiment narrates.

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/overload"
	"coca/internal/stream"
	"coca/internal/xrand"
)

// ---- Arm A: flash-crowd queue drill ----

// drillWaitAlpha mirrors the LoadTracker's queue-wait EWMA smoothing so
// the simulated snapshot feeds the Shedder the same signal shape the
// live serving path produces.
const drillWaitAlpha = 0.2

// flashConfig parameterizes one flash-crowd run.
type flashConfig struct {
	serviceTime time.Duration // per-request service cost (capacity = duration/serviceTime)
	deadline    time.Duration // per-request client deadline
	duration    time.Duration // simulated horizon
	multiplier  float64       // offered load as a multiple of capacity
	critical    float64       // fraction of offered requests that are critical class
	shed        overload.ShedConfig
	controls    bool // shedding + drop-expired-at-dequeue on/off
	seed        uint64
}

// flashResult is one run's outcome.
type flashResult struct {
	offered  int
	admitted int
	shed     int
	served   int // dequeued and serviced
	goodput  int // serviced AND completed within deadline
	late     int // serviced but past deadline (wasted work)
	expired  int // dropped at dequeue (deadline already passed)
	maxDepth int // high-water queue depth
	p99Wait  time.Duration
	capacity int // requests the server could serve over the horizon
}

type flashReq struct {
	arrival  time.Duration
	deadline time.Duration
}

// runFlashCrowd simulates a single-server admission queue in virtual
// time: Poisson arrivals (seeded PCG — bit-identical per seed), FIFO
// service at a fixed cost, the overload tier's Shedder consulted at
// admission and deadlines enforced at dequeue. No wall clock is read;
// the run is a pure function of its config.
func runFlashCrowd(cfg flashConfig) flashResult {
	r := xrand.New(cfg.seed, 0x64726c73) // "drls"
	epoch := time.Unix(0, 0)
	shed := overload.NewShedder(cfg.shed)
	meanGap := float64(cfg.serviceTime) / cfg.multiplier

	var (
		res        flashResult
		queue      []flashReq
		serverFree time.Duration
		ewma       float64
		waits      []time.Duration
	)
	res.capacity = int(cfg.duration / cfg.serviceTime)

	// drain services every queued request whose processing would begin
	// before the horizon `until`, folding observed waits into the EWMA
	// the shed decision reads.
	drain := func(until time.Duration) {
		for len(queue) > 0 {
			req := queue[0]
			start := serverFree
			if req.arrival > start {
				start = req.arrival
			}
			if start >= until {
				return
			}
			queue = queue[1:]
			wait := start - req.arrival
			ewma += drillWaitAlpha * (float64(wait) - ewma)
			if cfg.controls && start >= req.deadline {
				// Expired at dequeue: dropping costs nothing — the whole
				// point of carrying the deadline to the server.
				res.expired++
				serverFree = start
				continue
			}
			res.served++
			waits = append(waits, wait)
			serverFree = start + cfg.serviceTime
			if serverFree <= req.deadline {
				res.goodput++
			} else {
				res.late++
			}
		}
	}

	for t := time.Duration(r.ExpFloat64() * meanGap); t < cfg.duration; t += time.Duration(r.ExpFloat64() * meanGap) {
		drain(t)
		res.offered++
		class := overload.ClassSheddable
		if r.Float64() < cfg.critical {
			class = overload.ClassCritical
		}
		if cfg.controls {
			snap := overload.Snapshot{Depth: len(queue), QueueWait: time.Duration(ewma)}
			if !shed.Admit(epoch.Add(t), snap, class) {
				res.shed++
				continue
			}
		}
		res.admitted++
		queue = append(queue, flashReq{arrival: t, deadline: t + cfg.deadline})
		if len(queue) > res.maxDepth {
			res.maxDepth = len(queue)
		}
	}
	drain(cfg.duration)

	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		res.p99Wait = waits[len(waits)*99/100]
	}
	return res
}

// drillShedConfig is the shared shed policy of the flash-crowd arms:
// a 5ms standing-queue target with a 20ms grace interval and a hard
// depth backstop.
func drillShedConfig() overload.ShedConfig {
	return overload.ShedConfig{Target: 5 * time.Millisecond, Interval: 20 * time.Millisecond, MaxDepth: 64}
}

// flashArm builds the config for one multiplier at the experiment's
// scale. The request mix is 20% critical (allocations/uploads) and 80%
// sheddable (speculative probe refreshes), so even at 4× overload the
// critical stream alone stays under capacity — the regime shedding is
// designed for.
func flashArm(opts Options, mult float64, controls bool) flashConfig {
	dur := time.Duration(float64(2*time.Second) * opts.Scale)
	if dur < 300*time.Millisecond {
		dur = 300 * time.Millisecond
	}
	return flashConfig{
		serviceTime: time.Millisecond,
		deadline:    25 * time.Millisecond,
		duration:    dur,
		multiplier:  mult,
		critical:    0.2,
		shed:        drillShedConfig(),
		controls:    controls,
		seed:        opts.Seed,
	}
}

// ---- Arm B: brown-out serve-stale drill ----

// brownoutCoord injects coordination-plane failures: while failing is
// set, every Allocate and Upload errors — the client-visible shape of a
// server brown-out (suspect backend, stalled sync, mid-migration) —
// without touching the transport or the server's state.
type brownoutCoord struct {
	inner   core.Coordinator
	failing *atomic.Bool
}

func (b *brownoutCoord) Open(ctx context.Context, clientID int) (core.Session, error) {
	s, err := b.inner.Open(ctx, clientID)
	if err != nil {
		return nil, err
	}
	return &brownoutSession{inner: s, failing: b.failing}, nil
}

type brownoutSession struct {
	inner   core.Session
	failing *atomic.Bool
}

func (s *brownoutSession) Info() core.RegisterInfo { return s.inner.Info() }

func (s *brownoutSession) Allocate(ctx context.Context, status core.StatusReport) (core.Delta, error) {
	if s.failing.Load() {
		return core.Delta{}, fmt.Errorf("drills: injected brown-out (allocate)")
	}
	return s.inner.Allocate(ctx, status)
}

func (s *brownoutSession) Upload(ctx context.Context, upd core.UpdateReport) error {
	if s.failing.Load() {
		return fmt.Errorf("drills: injected brown-out (upload)")
	}
	return s.inner.Upload(ctx, upd)
}

func (s *brownoutSession) Close() error { return s.inner.Close() }

// brownoutResult is Arm B's outcome.
type brownoutResult struct {
	rounds      int
	brownStart  int // first failed round
	brownLen    int // failed-round count
	staleBound  int // configured MaxStaleRounds
	clients     int
	servedStale int     // fleet total of shield-served rounds
	maxStale    int     // high-water staleness observed (rounds)
	preHit      float64 // fleet hit ratio over warm healthy rounds
	brownHit    float64 // fleet hit ratio over the brown-out rounds
	postHit     float64 // fleet hit ratio after recovery
}

// runBrownout drives a real core fleet through an injected
// coordination-plane outage with the serve-stale shield armed.
func runBrownout(opts Options) (brownoutResult, error) {
	const (
		clients    = 6
		budget     = 60
		rounds     = 7
		brownStart = 3
		brownLen   = 2
		staleBound = 3
	)
	res := brownoutResult{
		rounds: rounds, brownStart: brownStart, brownLen: brownLen,
		staleBound: staleBound, clients: clients,
	}
	ctx := context.Background()
	ds := dataset.UCF101().Subset(20)
	arch := model.ResNet50()
	theta := thetaFor(arch, true)
	space := newSpace(ds, arch)
	frames := opts.frames(150)

	srv := core.NewServer(space, core.ServerConfig{Theta: theta, Seed: opts.Seed})
	failing := &atomic.Bool{}
	coord := &brownoutCoord{inner: srv, failing: failing}

	fleet := make([]*core.Client, clients)
	for k := range fleet {
		cl, err := core.NewClient(ctx, space, coord, core.ClientConfig{
			ID: k, Theta: theta, Budget: budget, RoundFrames: frames,
			EnvBiasWeight: 0.05, EnvSeed: uint64(k) + 1,
			MaxStaleRounds: staleBound,
		})
		if err != nil {
			return res, err
		}
		defer cl.Close()
		fleet[k] = cl
	}
	part, err := stream.NewPartition(stream.Config{
		Dataset: ds, NumClients: clients, SceneMeanFrames: 25,
		WorkingSetSize: 15, WorkingSetChurn: 0.05, Seed: opts.Seed,
	})
	if err != nil {
		return res, err
	}
	gens := make([]*stream.Generator, clients)
	for k := range gens {
		gens[k] = part.Client(k)
	}

	hitByRound := make([]float64, rounds)
	for round := 0; round < rounds; round++ {
		failing.Store(round >= brownStart && round < brownStart+brownLen)
		hits, total := 0, 0
		for k, cl := range fleet {
			if err := cl.BeginRound(); err != nil {
				return res, fmt.Errorf("round %d client %d begin: %w", round, k, err)
			}
			for f := 0; f < frames; f++ {
				if cl.Infer(gens[k].Next()).Hit {
					hits++
				}
				total++
			}
			if err := cl.EndRound(); err != nil {
				return res, fmt.Errorf("round %d client %d end: %w", round, k, err)
			}
			if sr := cl.StaleRounds(); sr > res.maxStale {
				res.maxStale = sr
			}
		}
		hitByRound[round] = float64(hits) / float64(total)
	}
	failing.Store(false)
	for _, cl := range fleet {
		res.servedStale += cl.ServedStale()
	}

	avg := func(lo, hi int) float64 {
		s := 0.0
		for _, h := range hitByRound[lo:hi] {
			s += h
		}
		return s / float64(hi-lo)
	}
	res.preHit = avg(1, brownStart) // round 0 is the cold start
	res.brownHit = avg(brownStart, brownStart+brownLen)
	res.postHit = avg(brownStart+brownLen, rounds)
	return res, nil
}

// ---- the registered experiment ----

// DrillsExp runs both failure drills and renders them as one table.
func DrillsExp(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	out := metrics.NewTable("Failure drills — flash-crowd overload and brown-out degradation (overload tier)",
		"Arm", "Goodput(%cap)", "Shed(%off)", "Expired", "p99 wait(ms)", "MaxDepth", "Hit(%)", "Stale")

	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	var twoX flashResult
	for _, mult := range []float64{1, 2, 4} {
		fr := runFlashCrowd(flashArm(opts, mult, true))
		if mult == 2 {
			twoX = fr
		}
		out.AddRow(fmt.Sprintf("flash %.0f× (shed+deadline)", mult),
			metrics.Fmt(pct(fr.goodput, fr.capacity), 1),
			metrics.Fmt(pct(fr.shed, fr.offered), 1),
			fmt.Sprintf("%d", fr.expired),
			metrics.Fmt(float64(fr.p99Wait)/1e6, 2),
			fmt.Sprintf("%d", fr.maxDepth),
			"", "")
	}
	naive := runFlashCrowd(flashArm(opts, 2, false))
	out.AddRow("flash 2× (no controls)",
		metrics.Fmt(pct(naive.goodput, naive.capacity), 1),
		"0.0",
		fmt.Sprintf("%d", naive.expired),
		metrics.Fmt(float64(naive.p99Wait)/1e6, 2),
		fmt.Sprintf("%d", naive.maxDepth),
		"", "")

	bo, err := runBrownout(opts)
	if err != nil {
		return nil, fmt.Errorf("drills brown-out: %w", err)
	}
	out.AddRow(fmt.Sprintf("brown-out r%d-%d (shield)", bo.brownStart, bo.brownStart+bo.brownLen-1),
		"", "", "", "", "",
		metrics.Pct(bo.brownHit, 2),
		fmt.Sprintf("served=%d max=%d/%d", bo.servedStale, bo.maxStale, bo.staleBound))

	out.AddNote("flash 2× with controls: goodput %.1f%% of capacity vs %.1f%% uncontrolled — shedding speculative work early and dropping expired work at dequeue prevents congestion collapse",
		pct(twoX.goodput, twoX.capacity), pct(naive.goodput, naive.capacity))
	out.AddNote("deadline propagation pays at dequeue: %d expired requests dropped for free in the controlled 2× arm (p99 queue wait %.2fms — the deadline is a hard ceiling on served waits; uncontrolled p99 %.1fms and growing with the horizon)",
		twoX.expired, float64(twoX.p99Wait)/1e6, float64(naive.p99Wait)/1e6)
	out.AddNote("shed-before-queue: controlled high-water depth %d vs %d uncontrolled — the queue never grows past the backstop because admission, not the queue, absorbs the overload",
		twoX.maxDepth, naive.maxDepth)
	out.AddNote("brown-out: %d/%d rounds dark, fleet served %d stale rounds (staleness ≤ %d, bound %d) at %.2f%% hit ratio vs %.2f%% healthy (%.2f%% after recovery) — cells are immutable-once-published, so the shield serves the last-synced allocation safely",
		bo.brownLen, bo.rounds, bo.servedStale, bo.maxStale, bo.staleBound,
		100*bo.brownHit, 100*bo.preHit, 100*bo.postHit)
	out.AddNote("fixed seed reproduces identical rows run-to-run (virtual-time arrivals, workload and fault schedule are all deterministic)")
	return &Result{ID: "drills", Table: out}, nil
}
