package experiments

import (
	"fmt"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/federation"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/stream"
	"coca/internal/xrand"
)

// fedArm is one federation experiment configuration.
type fedArm struct {
	name      string
	servers   int
	syncEvery int
	topo      federation.Kind
}

// fedWorkload is the regime where the federation tier matters: non-IID
// Dirichlet client distributions (each server aggregates a skewed class
// subset), long-tail popularity, working-set churn (clients keep
// encountering classes their own server's fleet has not refreshed) and
// shared semantic drift (stale centers decay, so a cell refreshed by any
// fleet member is worth shipping to every server).
func fedWorkload(ds *dataset.Spec, clients int, seed uint64) stream.Config {
	return stream.Config{
		Dataset:         ds,
		NumClients:      clients,
		ClassWeights:    xrand.LongTailWeights(ds.NumClasses, 10),
		NonIIDLevel:     6,
		SceneMeanFrames: 20,
		WorkingSetSize:  8,
		WorkingSetChurn: 0.2,
		Seed:            seed,
	}
}

// runFederationArm builds and runs one arm, returning the fleet summary,
// the minimum per-server hit ratio and the sync statistics.
func runFederationArm(opts Options, arm fedArm, clients, rounds, frames, budget int, batch int, init *core.ServerInit) (metrics.Summary, float64, federation.SyncStats, error) {
	ds := dataset.UCF101().Subset(30)
	arch := model.ResNet101()
	space := newSpace(ds, arch)
	theta := thetaFor(arch, true)
	cl, err := federation.NewCluster(space, federation.ClusterConfig{
		ServerInit: init,
		NumServers: arm.servers,
		NumClients: clients,
		Topology:   arm.topo,
		SyncEvery:  arm.syncEvery,
		Client: core.ClientConfig{
			Theta: theta, Budget: budget, RoundFrames: frames,
			EnvBiasWeight: 0.05, DriftWeight: 0.1, DriftPerRound: 0.3,
		},
		Server:     core.ServerConfig{Theta: theta, Seed: opts.Seed, PeerInertia: 4},
		Stream:     fedWorkload(ds, clients, opts.Seed),
		Rounds:     rounds,
		SkipRounds: 1,
		BatchSize:  batch,
	})
	if err != nil {
		return metrics.Summary{}, 0, federation.SyncStats{}, err
	}
	perServer, combined, err := cl.Run()
	if err != nil {
		return metrics.Summary{}, 0, federation.SyncStats{}, err
	}
	minHit := 1.0
	for _, acc := range perServer {
		if s := acc.Summary(); s.HitRatio < minHit {
			minHit = s.HitRatio
		}
	}
	return combined.Summary(), minHit, cl.SyncStats(), nil
}

// FederationExp reproduces the federation-tier evaluation: a fleet of
// edge servers with disjoint client sub-fleets under a drifted, non-IID
// workload, comparing the partitioned no-sync baseline and the federated
// (peer delta-sync) fleet against the single-server oracle that
// aggregates every client. The last rows sweep the fleet size at a fixed
// total client count, measuring how per-server sync traffic scales.
func FederationExp(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const (
		servers = 3
		clients = 12
		budget  = 150
	)
	rounds := opts.rounds(8)
	frames := opts.frames(200)
	var fedInit *core.ServerInit

	// Every arm runs the same server configuration at the same seed: build
	// the shared-dataset construction once and share it across arms (and
	// across each arm's servers) — bitwise identical to per-server builds.
	{
		ds := dataset.UCF101().Subset(30)
		arch := model.ResNet101()
		initSpace := newSpace(ds, arch)
		theta := thetaFor(arch, true)
		fedInit = core.BuildServerInit(initSpace, core.ServerConfig{Theta: theta, Seed: opts.Seed, PeerInertia: 4})
	}

	out := metrics.NewTable("Federation — cross-server hit amplification under drifted non-IID fleets (ResNet101, UCF101-30)",
		"Arm", "Lat.(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "Acc.(%)", "Hit(%)", "MinSrvHit(%)", "Sync KiB/srv/round")

	arms := []fedArm{
		{name: "single-server oracle", servers: 1, syncEvery: 0, topo: federation.Mesh},
		{name: "partitioned (no sync)", servers: servers, syncEvery: 0, topo: federation.Mesh},
		{name: "federated mesh (sync=1)", servers: servers, syncEvery: 1, topo: federation.Mesh},
		{name: "federated star (sync=1)", servers: servers, syncEvery: 1, topo: federation.Star},
	}
	var oracleHit, oracleAcc, fedHit, fedAcc, noSyncAcc, fedMinHit, noSyncMinHit float64
	for _, arm := range arms {
		sum, minHit, sync, err := runFederationArm(opts, arm, clients, rounds, frames, budget, opts.BatchSize, fedInit)
		if err != nil {
			return nil, fmt.Errorf("federation arm %q: %w", arm.name, err)
		}
		perSrvRound := float64(sync.BytesSent) / float64(arm.servers) / float64(rounds) / 1024
		out.AddRow(arm.name,
			metrics.Fmt(sum.AvgLatencyMs, 2),
			metrics.Fmt(sum.P50LatencyMs, 2),
			metrics.Fmt(sum.P95LatencyMs, 2),
			metrics.Fmt(sum.P99LatencyMs, 2),
			metrics.Pct(sum.Accuracy, 2),
			metrics.Pct(sum.HitRatio, 2),
			metrics.Pct(minHit, 2),
			metrics.Fmt(perSrvRound, 1),
		)
		switch arm.name {
		case "single-server oracle":
			oracleHit, oracleAcc = sum.HitRatio, sum.Accuracy
		case "partitioned (no sync)":
			noSyncMinHit, noSyncAcc = minHit, sum.Accuracy
		case "federated mesh (sync=1)":
			fedMinHit, fedHit, fedAcc = minHit, sum.HitRatio, sum.Accuracy
		}
	}

	// Fleet-size sweep at fixed total client count: per-server sync bytes
	// must grow sub-linearly (each server's locally-dirty set shrinks as
	// the fleet splits the same workload further).
	sweepRounds := opts.rounds(4)
	for _, n := range []int{2, 3, 4} {
		arm := fedArm{servers: n, syncEvery: 1, topo: federation.Mesh}
		_, _, sync, err := runFederationArm(opts, arm, clients, sweepRounds, frames, budget, opts.BatchSize, fedInit)
		if err != nil {
			return nil, fmt.Errorf("federation sweep n=%d: %w", n, err)
		}
		perSrvRound := float64(sync.BytesSent) / float64(n) / float64(sweepRounds) / 1024
		out.AddRow(fmt.Sprintf("  sweep: %d servers, %d clients", n, clients),
			"", "", "", "", "", "", "", metrics.Fmt(perSrvRound, 1))
	}

	if oracleHit > 0 {
		out.AddNote("federated mesh mean per-server hit ratio is %.1f%% of the single-server oracle; worst server recovers from %.1f%% (no sync) to %.1f%%",
			100*fedHit/oracleHit, 100*noSyncMinHit/oracleHit, 100*fedMinHit/oracleHit)
		out.AddNote("accuracy recovers from %.2f%% (partitioned) to %.2f%% federated vs %.2f%% oracle — peer-synced entries stay fresh under drift",
			100*noSyncAcc, 100*fedAcc, 100*oracleAcc)
	}
	out.AddNote("sync traffic is the delta encoding's wire bytes; per-server bytes stay near-flat as the fleet grows at fixed total clients")
	out.AddNote("fixed seed reproduces identical rows run-to-run (deterministic peer-id merge order)")
	return &Result{ID: "federation", Table: out}, nil
}
