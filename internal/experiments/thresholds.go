package experiments

import (
	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
)

// Fig5 reproduces Fig. 5: the hit-threshold Θ sweep for VGG16_BN
// (0.027–0.043) and ResNet101 (0.008–0.016), reporting hit ratio, hit
// accuracy, overall accuracy and average latency at each Θ.
func Fig5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	out := metrics.NewTable("Fig. 5 — threshold Θ sweep (UCF101-50)",
		"Model", "Θ", "Lat.(ms)", "Acc.(%)", "Hit acc.(%)", "Hit ratio (%)")
	cases := []struct {
		arch   *model.Arch
		thetas []float64
	}{
		{model.VGG16BN(), []float64{0.027, 0.031, 0.035, 0.039, 0.043}},
		{model.ResNet101(), []float64{0.008, 0.010, 0.012, 0.014, 0.016}},
	}
	ds := dataset.UCF101().Subset(50)
	for _, c := range cases {
		space := semantics.NewSpace(ds, c.arch)
		for _, theta := range c.thetas {
			ms := newMethodSet(space, 4, theta, 300, opts.frames(300), opts.Seed)
			engines, _, err := ms.coca(theta, nil)
			if err != nil {
				return nil, err
			}
			w := opts.workload(ds)
			s, err := runEngines(engines, w, opts.rounds(6), ms.frames, 1)
			if err != nil {
				return nil, err
			}
			out.AddRow(c.arch.Name, metrics.Fmt(theta, 3),
				metrics.Fmt(s.AvgLatencyMs, 2),
				metrics.Pct(s.Accuracy, 2),
				metrics.Pct(s.HitAccuracy, 2),
				metrics.Pct(s.HitRatio, 1))
		}
	}
	out.AddNote("paper: as Θ rises, hit ratio falls (ResNet101: 95.5%%→88.3%%) while hit accuracy, overall accuracy and latency rise")
	return &Result{ID: "fig5", Table: out}, nil
}

// Fig6 reproduces Fig. 6: the collection-threshold sweeps. For Γ (hit
// reinforcement) and Δ (miss expansion) it reports the absorption ratio —
// collected samples over samples meeting the precondition — and the label
// accuracy of what was collected.
func Fig6(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(50)
	arch := model.ResNet101()
	theta := thetaFor(arch, true)
	out := metrics.NewTable("Fig. 6 — collection thresholds (ResNet101, UCF101-50)",
		"Threshold", "Value", "Absorption (%)", "Collected acc. (%)")

	run := func(gamma, delta float64) (core.CollectionStats, error) {
		space := semantics.NewSpace(ds, arch)
		ms := newMethodSet(space, 4, theta, 300, opts.frames(300), opts.Seed)
		engines, cluster, err := ms.coca(theta, func(cfg *core.ClusterConfig) {
			cfg.Client.GammaCollect = gamma
			cfg.Client.DeltaCollect = delta
		})
		if err != nil {
			return core.CollectionStats{}, err
		}
		w := opts.workload(ds)
		if _, err := runEngines(engines, w, opts.rounds(5), ms.frames, 0); err != nil {
			return core.CollectionStats{}, err
		}
		var total core.CollectionStats
		for _, c := range cluster.Clients {
			cs := c.Collection()
			total.Hits += cs.Hits
			total.HitAbsorbed += cs.HitAbsorbed
			total.HitAbsorbedCorrect += cs.HitAbsorbedCorrect
			total.Misses += cs.Misses
			total.MissAbsorbed += cs.MissAbsorbed
			total.MissAbsorbedCorrect += cs.MissAbsorbedCorrect
		}
		return total, nil
	}

	// Γ sweep. The paper sweeps 0.02–0.14; our feature geometry
	// compresses discriminative scores ~2×, so the equivalent range is
	// 0.01–0.07 (documented in EXPERIMENTS.md).
	for _, gamma := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07} {
		cs, err := run(gamma, 1e9)
		if err != nil {
			return nil, err
		}
		ratio, acc := 0.0, 0.0
		if cs.Hits > 0 {
			ratio = float64(cs.HitAbsorbed) / float64(cs.Hits)
		}
		if cs.HitAbsorbed > 0 {
			acc = float64(cs.HitAbsorbedCorrect) / float64(cs.HitAbsorbed)
		}
		out.AddRow("Γ", metrics.Fmt(gamma, 2), metrics.Pct(ratio, 2), metrics.Pct(acc, 1))
	}
	// Δ sweep (paper values verbatim).
	for _, delta := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35} {
		cs, err := run(1e9, delta)
		if err != nil {
			return nil, err
		}
		ratio, acc := 0.0, 0.0
		if cs.Misses > 0 {
			ratio = float64(cs.MissAbsorbed) / float64(cs.Misses)
		}
		if cs.MissAbsorbed > 0 {
			acc = float64(cs.MissAbsorbedCorrect) / float64(cs.MissAbsorbed)
		}
		out.AddRow("Δ", metrics.Fmt(delta, 2), metrics.Pct(ratio, 2), metrics.Pct(acc, 1))
	}
	out.AddNote("paper: absorption falls and collected accuracy rises with both thresholds (Γ=0.14: 0.21%% absorbed; Δ=0.35: 6.47%%, both ~100%% accurate)")
	return &Result{ID: "fig6", Table: out}, nil
}
