// Package experiments regenerates every table and figure of the paper's
// evaluation (§III motivation studies and §VI performance evaluation) on
// the simulated substrate. Each experiment is registered by its paper id
// (e.g. "table2", "fig7") and produces a metrics.Table whose rows mirror
// the paper's; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"coca/internal/baseline"
	"coca/internal/cache"
	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/gtable"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/stream"
)

// Options tune an experiment run.
type Options struct {
	// Scale shrinks run lengths for quick checks and benchmarks: 1.0 is
	// the full experiment, 0.25 runs quarter-length rounds/sweeps.
	Scale float64
	// Seed roots all workload randomness.
	Seed uint64
	// BatchSize drives batch-capable engines (CoCa clients) through the
	// batched round driver in chunks of this size. 0 or 1 is frame at a
	// time; results are identical either way, batching only speeds the
	// host computation up.
	BatchSize int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// frames scales a frame count, with a floor that keeps statistics sane.
func (o Options) frames(full int) int {
	n := int(float64(full) * o.Scale)
	if n < 60 {
		n = 60
	}
	return n
}

// rounds scales a round count, with a floor of 2.
func (o Options) rounds(full int) int {
	n := int(float64(full) * o.Scale)
	if n < 2 {
		n = 2
	}
	return n
}

// Result is an experiment's output.
type Result struct {
	ID    string
	Table *metrics.Table
}

// Experiment is a registered reproduction target.
type Experiment struct {
	// ID is the paper artifact id: "fig1a" ... "fig10b", "table1" ...
	ID string
	// Title describes the artifact.
	Title string
	// Shape states the qualitative property the paper reports and this
	// run should reproduce.
	Shape string
	// Run executes the experiment.
	Run func(Options) (*Result, error)
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1a", Title: "Fig. 1(a): latency/accuracy vs cache size", Shape: "latency dips to a minimum near 10% cache size then creeps up; accuracy stable", Run: Fig1a},
		{ID: "fig1b", Title: "Fig. 1(b): per-layer hit ratio and hit accuracy", Shape: "hit ratio high shallow+deep, low mid; hit accuracy lower at shallow/deep than middle", Run: Fig1b},
		{ID: "fig2", Title: "Fig. 2: global updates vs cluster quality (t-SNE)", Shape: "with global updates, cache centers align with sample clusters (higher margin/silhouette)", Run: Fig2},
		{ID: "table1", Title: "Table I: hot-spot class count sweep", Shape: "latency minimal near the true hot-spot count; accuracy collapses below it, stabilizes above", Run: Table1},
		{ID: "fig5", Title: "Fig. 5: threshold Θ sweep", Shape: "hit ratio falls with Θ; hit/total accuracy and latency rise", Run: Fig5},
		{ID: "fig6", Title: "Fig. 6: collection thresholds Γ and Δ", Shape: "absorption ratio falls, collected-sample accuracy rises with both thresholds", Run: Fig6},
		{ID: "table2", Title: "Table II: latency under SLO accuracy-loss budgets", Shape: "CoCa lowest latency under both budgets; order CoCa < SMTM < FoggyCache < LearnedCache < Edge-Only", Run: Table2},
		{ID: "table3", Title: "Table III: uniform vs long-tail distribution", Shape: "CoCa best in both groups and faster on long-tail than uniform", Run: Table3},
		{ID: "fig7", Title: "Fig. 7: latency under non-IID levels", Shape: "Edge-Only flat; caching methods speed up as non-IID level rises; CoCa best", Run: Fig7},
		{ID: "fig8", Title: "Fig. 8: ACA vs LRU/FIFO/RAND", Shape: "all methods improve then worsen with cache size; ACA clearly best past size 30", Run: Fig8},
		{ID: "fig9", Title: "Fig. 9: ablation (Normal/GCU/DCA/DCA+GCU)", Shape: "DCA dominates latency reduction; DCA+GCU best overall; GCU mild", Run: Fig9},
		{ID: "fig10a", Title: "Fig. 10(a): update cycle F sweep", Shape: "latency falls then stabilizes for F ≥ 300; accuracy declines slightly with F", Run: Fig10a},
		{ID: "fig10b", Title: "Fig. 10(b): cache-request response latency vs clients", Shape: "response latency grows mildly with client count (~+7% from 60 to 160)", Run: Fig10b},
		{ID: "federation", Title: "Federation: multi-edge-server peer delta-sync (beyond the paper)", Shape: "federated per-server hit ratio recovers toward the single-server oracle; partitioned no-sync lags; per-server sync bytes near-flat in fleet size", Run: FederationExp},
		{ID: "routing", Title: "Routing: placement policies, brown-out migration and recovery (beyond the paper)", Shape: "semantic placement beats hash and random on fleet hit ratio; brown-out migrations recover within a few rounds; migrated allocations bitwise-identical to uninterrupted runs", Run: RoutingExp},
		{ID: "churn", Title: "Churn: gossip vs mesh sync bytes and elastic membership (beyond the paper)", Shape: "gossip per-node sync bytes stay near-flat while mesh grows with fleet size; a snapshot join costs a fraction of history replay; a crash never stalls the survivors", Run: ChurnExp},
		{ID: "drills", Title: "Drills: flash-crowd overload and brown-out degradation (beyond the paper)", Shape: "under 2× overload goodput stays within 20% of capacity while the uncontrolled arm collapses; expired work is dropped at dequeue with bounded p99; a brown-out is served stale within the staleness bound at a near-healthy hit ratio", Run: DrillsExp},
	}
}

// ByID finds a registered experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// ---- shared scenario plumbing ----

// Per-model hit thresholds Θ for the two SLO accuracy-loss budgets the
// paper evaluates (§VI-D): <3% and <5%.
func thetaFor(arch *model.Arch, strict bool) float64 {
	switch arch.Name {
	case "VGG16_BN":
		if strict {
			return 0.035
		}
		return 0.027
	case "AST":
		if strict {
			return 0.022
		}
		return 0.017
	default: // ResNets
		if strict {
			return 0.012
		}
		return 0.008
	}
}

// workload bundles the stream settings shared by most experiments, plus
// the batch size the round driver should use.
type workload struct {
	ds           *dataset.Spec
	classWeights []float64
	nonIID       float64
	sceneMean    float64
	workingSet   int
	churn        float64
	seed         uint64
	batch        int
}

func defaultWorkload(ds *dataset.Spec, seed uint64) workload {
	return workload{
		ds: ds, sceneMean: 25, workingSet: 15, churn: 0.05, seed: seed,
	}
}

// workload builds the default workload for ds carrying the options'
// seed and batch size.
func (o Options) workload(ds *dataset.Spec) workload {
	w := defaultWorkload(ds, o.Seed)
	w.batch = o.BatchSize
	return w
}

func (w workload) config(clients int) stream.Config {
	return stream.Config{
		Dataset:         w.ds,
		NumClients:      clients,
		ClassWeights:    w.classWeights,
		NonIIDLevel:     w.nonIID,
		SceneMeanFrames: w.sceneMean,
		WorkingSetSize:  w.workingSet,
		WorkingSetChurn: w.churn,
		Seed:            w.seed,
	}
}

// envFor builds the per-client feature environment used across methods so
// comparisons see identical conditions.
func envFor(clientID int, bias float64) *semantics.Env {
	if bias == 0 {
		return nil
	}
	return semantics.NewEnv(uint64(clientID)+1, bias)
}

// runEngines drives one engine per client over the workload and returns
// the combined summary.
func runEngines(engines []engine.Engine, w workload, rounds, framesPerRound, skip int) (metrics.Summary, error) {
	part, err := stream.NewPartition(w.config(len(engines)))
	if err != nil {
		return metrics.Summary{}, err
	}
	gens := make([]*stream.Generator, len(engines))
	for k := range gens {
		gens[k] = part.Client(k)
	}
	_, combined, err := engine.RunRounds(engines, gens, engine.RunConfig{
		Rounds: rounds, FramesPerRound: framesPerRound, SkipRounds: skip,
		BatchSize: w.batch,
	})
	if err != nil {
		return metrics.Summary{}, err
	}
	return combined.Summary(), nil
}

// methodSet builds the five comparison systems on a shared space/workload.
type methodSet struct {
	space   *semantics.Space
	clients int
	bias    float64
	theta   float64
	budget  int
	frames  int
	seed    uint64
	// initTable is shared by SMTM and the policy caches.
	initTable *gtable.Table
}

func newMethodSet(space *semantics.Space, clients int, theta float64, budget, frames int, seed uint64) *methodSet {
	return &methodSet{
		space: space, clients: clients, bias: 0.05, theta: theta,
		budget: budget, frames: frames, seed: seed,
		initTable: core.InitialTable(space, 64, seed),
	}
}

func (m *methodSet) edgeOnly() []engine.Engine {
	out := make([]engine.Engine, m.clients)
	for k := range out {
		out[k] = baseline.NewEdgeOnly(m.space, envFor(k, m.bias))
	}
	return out
}

func (m *methodSet) learnedCache(strict bool) ([]engine.Engine, error) {
	margin := 0.7 * (1 - m.space.Arch.RhoSame)
	if !strict {
		margin = 0.55 * (1 - m.space.Arch.RhoSame)
	}
	out := make([]engine.Engine, m.clients)
	for k := range out {
		lc, err := baseline.NewLearnedCache(m.space, envFor(k, m.bias), baseline.LearnedCacheConfig{
			ExitMargin: margin,
		})
		if err != nil {
			return nil, err
		}
		out[k] = lc
	}
	return out, nil
}

func (m *methodSet) foggyCache(strict bool) ([]engine.Engine, error) {
	minSim := 0.34
	if !strict {
		minSim = 0.28
	}
	srv := baseline.NewFoggyServer(baseline.FoggyCacheConfig{MinSimilarity: minSim})
	out := make([]engine.Engine, m.clients)
	for k := range out {
		fc, err := baseline.NewFoggyCache(m.space, envFor(k, m.bias), srv, baseline.FoggyCacheConfig{MinSimilarity: minSim})
		if err != nil {
			return nil, err
		}
		out[k] = fc
	}
	return out, nil
}

func (m *methodSet) smtm(theta float64) ([]engine.Engine, error) {
	out := make([]engine.Engine, m.clients)
	for k := range out {
		s, err := baseline.NewSMTM(m.space, envFor(k, m.bias), baseline.SMTMConfig{
			Theta: theta, NumLayers: 4, Budget: m.budget,
			RoundFrames: m.frames, InitTable: m.initTable,
		})
		if err != nil {
			return nil, err
		}
		out[k] = s
	}
	return out, nil
}

// coca builds a CoCa cluster sharing the workload conditions; mutate is an
// optional hook over the cluster config (ablation arms etc.).
func (m *methodSet) coca(theta float64, mutate func(*core.ClusterConfig)) ([]engine.Engine, *core.Cluster, error) {
	cfg := core.ClusterConfig{
		NumClients: m.clients,
		Client: core.ClientConfig{
			Theta: theta, Budget: m.budget, RoundFrames: m.frames,
			EnvBiasWeight: m.bias,
		},
		Server: core.ServerConfig{Theta: theta, Seed: m.seed},
		Rounds: 1, // overridden by the caller's runEngines loop
	}
	if mutate != nil {
		mutate(&cfg)
	}
	// The cluster builds its own generators, but experiments drive all
	// methods through runEngines for identical streams; so only its
	// server/clients are used.
	space := m.space
	srv := core.NewServer(space, cfg.Server)
	engines := make([]engine.Engine, m.clients)
	cluster := &core.Cluster{Space: space, Server: srv}
	for k := 0; k < m.clients; k++ {
		ccfg := cfg.Client
		ccfg.ID = k
		ccfg.EnvSeed = uint64(k) + 1
		cl, err := core.NewClient(context.Background(), space, srv, ccfg)
		if err != nil {
			return nil, nil, err
		}
		engines[k] = cl
		cluster.Clients = append(cluster.Clients, cl)
	}
	return engines, cluster, nil
}

// newSpace builds a semantics space (alias kept short for experiment code).
func newSpace(ds *dataset.Spec, arch *model.Arch) *semantics.Space {
	return semantics.NewSpace(ds, arch)
}

// sortedLayerKeys returns sorted keys of a per-layer map.
func sortedLayerKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// fixedEngine is a single-client semantic cache with a frozen layer/class
// configuration — the instrument behind the paper's §III motivation
// studies (Fig. 1, Table I), which isolate cache geometry from allocation.
type fixedEngine struct {
	space  *semantics.Space
	env    *semantics.Env
	local  *cache.Local
	lookup *cache.Lookup
}

func newFixedEngine(space *semantics.Space, env *semantics.Env, table *gtable.Table, sites, classes []int, theta float64) (*fixedEngine, error) {
	layers := make([]cache.Layer, 0, len(sites))
	for _, site := range sites {
		cls, entries := table.ExtractLayer(site, classes)
		layers = append(layers, cache.Layer{Site: site, Classes: cls, Entries: entries})
	}
	local, err := cache.NewLocal(layers)
	if err != nil {
		return nil, err
	}
	return &fixedEngine{
		space:  space,
		env:    env,
		local:  local,
		lookup: cache.NewLookup(cache.Config{Alpha: cache.DefaultAlpha, Theta: theta}),
	}, nil
}

func (f *fixedEngine) Infer(smp dataset.Sample) engine.Result {
	arch := f.space.Arch
	f.lookup.Reset()
	var latency, lookupMs float64
	res := engine.Result{Pred: -1, HitLayer: -1}
	for j := 0; j <= arch.NumLayers; j++ {
		latency += arch.BlockLatencyMs[j]
		if j == arch.NumLayers {
			break
		}
		layer := f.local.LayerAt(j)
		if layer == nil || layer.Len() == 0 {
			continue
		}
		vec := f.space.SampleVector(smp, j, f.env)
		cost := arch.LookupCostMs(layer.Len())
		latency += cost
		lookupMs += cost
		if pr := f.lookup.Probe(layer, vec); pr.Hit {
			res.Pred = pr.Class
			res.Hit = true
			res.HitLayer = j
			break
		}
	}
	if !res.Hit {
		res.Pred = f.space.Predict(smp, f.env).Class
	}
	res.LatencyMs = latency
	res.LookupMs = lookupMs
	return res
}

// evenSites returns n sites evenly spaced over [0, L).
func evenSites(L, n int) []int {
	if n <= 0 {
		return nil
	}
	if n > L {
		n = L
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i*L/n)
	}
	return out
}

func allClasses(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
