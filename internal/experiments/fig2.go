package experiments

import (
	"context"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/gtable"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/tsne"
	"coca/internal/vecmath"
)

// Fig2 reproduces Fig. 2: 10 clients on a 20-class UCF101 subset whose
// class semantics gradually drift; over several rounds each client uploads
// Eq. 3 update tables built from its inference samples, which the server
// merges into the global cache (Eq. 4/5). After the rounds, the cached
// semantic centers at the middle cache layer are compared against fresh
// sample clusters, with and without the global-update mechanism, via the
// same t-SNE/cosine analysis the paper plots.
func Fig2(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(20)
	arch := model.ResNet101()
	layer := 18 // the paper's probed layer (of 34)
	const (
		numClients      = 10
		samplesPerRound = 20
		driftWeight     = 0.15
		driftPerRound   = 0.40
	)
	rounds := opts.rounds(8)
	ctx := context.Background()
	probeClasses := []int{0, 5, 10, 15} // 4 classes, as in the figure
	const samplesPerClass = 25

	out := metrics.NewTable("Fig. 2 — cluster alignment with/without global updates (layer 18, UCF101-20)",
		"Setting", "Center→cluster cos", "Center silhouette")

	// Client environments share the drift clock; each has a small bias.
	envs := make([]*semantics.Env, numClients)
	space := semantics.NewSpace(ds, arch)
	for k := range envs {
		envs[k] = semantics.NewEnv(uint64(k)+1, 0.05)
		envs[k].DriftWeight = driftWeight
	}
	finalEpoch := float64(rounds) * driftPerRound

	for _, updates := range []bool{false, true} {
		srv := core.NewServer(space, core.ServerConfig{
			Theta: thetaFor(arch, true), Seed: opts.Seed,
			DisableGlobalUpdates: !updates,
		})
		// One coordination session per client, as a real fleet would hold.
		sessions := make([]core.Session, numClients)
		for k := range sessions {
			sess, err := srv.Open(ctx, k)
			if err != nil {
				return nil, err
			}
			sessions[k] = sess
		}
		// Rounds of client uploads: each client absorbs semantic vectors
		// of the samples it inferred (Eq. 3) and uploads them (Eq. 4/5),
		// exactly the §IV-C/D cycle, driven directly so every class and
		// layer receives updates.
		for round := 0; round < rounds; round++ {
			epoch := float64(round) * driftPerRound
			for k := 0; k < numClients; k++ {
				envs[k].DriftEpoch = epoch
				upd := gtable.NewUpdateTable(gtable.DefaultBeta, model.Dim)
				freq := make([]float64, ds.NumClasses)
				for i := 0; i < samplesPerRound; i++ {
					class := (k + i*3) % ds.NumClasses
					smp := ds.NewSample(class, opts.Seed, 0xF2, uint64(round), uint64(k), uint64(i))
					freq[class]++
					_ = upd.Absorb(class, layer, space.SampleVector(smp, layer, envs[k]))
				}
				report := core.UpdateReport{Freq: freq}
				upd.ForEach(func(class, l int, vec []float32, count int) {
					report.Cells = append(report.Cells, core.UpdateCell{
						Class: class, Layer: l, Count: count,
						Vec: append([]float32(nil), vec...),
					})
				})
				if err := sessions[k].Upload(ctx, report); err != nil {
					return nil, err
				}
			}
		}

		// Fresh samples from the current (drifted) distribution.
		envs[0].DriftEpoch = finalEpoch
		var vecs [][]float32
		var labels []int
		for _, class := range probeClasses {
			for i := 0; i < samplesPerClass; i++ {
				smp := ds.NewSample(class, opts.Seed, 0xF16, uint64(class), uint64(i))
				vecs = append(vecs, space.SampleVector(smp, layer, envs[0]))
				labels = append(labels, class)
			}
		}
		table := srv.Table()
		var centerCos float64
		for ci, class := range probeClasses {
			mean := vecmath.Mean(vecs[ci*samplesPerClass : (ci+1)*samplesPerClass])
			vecmath.Normalize(mean)
			centerCos += float64(vecmath.Cosine(table.Get(class, layer), mean))
		}
		centerCos /= float64(len(probeClasses))

		// Center silhouette: for each cached center, the silhouette
		// against the sample clusters — the quantity the figure's
		// "larger points sit inside their cluster" conveys.
		var centerSil float64
		for ci, class := range probeClasses {
			var a float64
			bs := make([]float64, 0, len(probeClasses)-1)
			for cj := range probeClasses {
				var d float64
				for i := 0; i < samplesPerClass; i++ {
					d += 1 - float64(vecmath.Cosine(table.Get(class, layer), vecs[cj*samplesPerClass+i]))
				}
				d /= samplesPerClass
				if cj == ci {
					a = d
				} else {
					bs = append(bs, d)
				}
			}
			b := bs[0]
			for _, x := range bs[1:] {
				if x < b {
					b = x
				}
			}
			if mx := max(a, b); mx > 0 {
				centerSil += (b - a) / mx
			}
		}
		centerSil /= float64(len(probeClasses))

		// The joint t-SNE embedding the figure plots; run to confirm it
		// is computable on this data.
		joint := append([][]float32(nil), vecs...)
		for _, class := range probeClasses {
			joint = append(joint, table.Get(class, layer))
		}
		if _, err := tsne.Run(joint, tsne.Config{Iterations: 150, Seed: opts.Seed}); err != nil {
			return nil, err
		}

		name := "without global updates"
		if updates {
			name = "with global updates"
		}
		out.AddRow(name,
			metrics.Fmt(centerCos, 4),
			metrics.Fmt(centerSil, 3),
		)
	}
	out.AddNote("paper: with global updates the semantic centers align with the current class sample clusters")
	return &Result{ID: "fig2", Table: out}, nil
}
