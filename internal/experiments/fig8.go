package experiments

import (
	"fmt"

	"coca/internal/baseline"
	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/xrand"
)

// Fig8 reproduces Fig. 8: ACA versus the classical replacement policies
// (LRU, FIFO, RAND) on a long-tail 100-class UCF101 workload, sweeping the
// cache size (entries per cache layer). The policy arms use a fixed set of
// high-benefit layers; ACA is constrained to the same total memory.
func Fig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(100)
	arch := model.ResNet101()
	space := semantics.NewSpace(ds, arch)
	theta := thetaFor(arch, true)
	table := core.InitialTable(space, 64, opts.Seed)
	// Fixed high-benefit sites for the policy arms: the shallow quarter
	// of the network, where expected benefit ζ = Υ·R is largest.
	sites := evenSites(arch.NumLayers, 4)

	w := opts.workload(ds)
	w.classWeights = xrand.LongTailWeights(ds.NumClasses, 90)

	out := metrics.NewTable("Fig. 8 — replacement policy comparison (ResNet101, long-tail UCF101-100)",
		"Cache size", "FIFO Lat./Acc.", "LRU Lat./Acc.", "RAND Lat./Acc.", "ACA Lat./Acc.")
	clients := 4
	frames := opts.frames(300)
	rounds := opts.rounds(6)

	for _, size := range []int{10, 30, 50, 70, 90} {
		row := []string{fmt.Sprintf("%d", size)}
		for _, pol := range []string{"FIFO", "LRU", "RAND"} {
			engines := make([]engine.Engine, clients)
			for k := range engines {
				pc, err := baseline.NewPolicyCache(space, envFor(k, 0.05), baseline.PolicyCacheConfig{
					Theta: theta, Sites: sites, Capacity: size,
					Policy: pol, Table: table, Seed: opts.Seed + uint64(k),
				})
				if err != nil {
					return nil, err
				}
				engines[k] = pc
			}
			s, err := runEngines(engines, w, rounds, frames, 1)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.Fmt(s.AvgLatencyMs, 1)+" / "+metrics.Pct(s.Accuracy, 1))
		}
		// ACA with the same total memory: size entries per layer × the
		// same number of layers.
		ms := newMethodSet(space, clients, theta, size*len(sites), frames, opts.Seed)
		engines, _, err := ms.coca(theta, nil)
		if err != nil {
			return nil, err
		}
		s, err := runEngines(engines, w, rounds, frames, 1)
		if err != nil {
			return nil, err
		}
		row = append(row, metrics.Fmt(s.AvgLatencyMs, 1)+" / "+metrics.Pct(s.Accuracy, 1))
		out.AddRow(row...)
	}
	out.AddNote("paper: all methods improve then worsen as cache size grows; ACA clearly best for sizes > 30")
	out.AddNote("accuracy shown alongside: policy caches trade accuracy for latency via erroneous hits at small sizes")
	return &Result{ID: "fig8", Table: out}, nil
}
