package experiments

import (
	"fmt"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/stream"
)

// motivationRun drives a single fixed-cache engine over a temporally-local
// uniform stream — the paper's §III single-client measurement setup.
func motivationRun(space *semantics.Space, eng engine.Engine, w workload, frames int) (metrics.Summary, error) {
	part, err := stream.NewPartition(w.config(1))
	if err != nil {
		return metrics.Summary{}, err
	}
	gen := part.Client(0)
	var acc metrics.Accumulator
	for i := 0; i < frames; i++ {
		smp := gen.Next()
		res := eng.Infer(smp)
		acc.Record(metrics.Obs{
			LatencyMs: res.LatencyMs, LookupMs: res.LookupMs,
			Correct: res.Pred == smp.Class, Hit: res.Hit, HitLayer: res.HitLayer,
		})
	}
	return acc.Summary(), nil
}

// Fig1a reproduces Fig. 1(a): ResNet101 on UCF101-50 with all classes
// cached, sweeping the cache size via the number of activated layers.
func Fig1a(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(50)
	arch := model.ResNet101()
	space := semantics.NewSpace(ds, arch)
	table := core.InitialTable(space, 64, opts.Seed)
	w := opts.workload(ds)
	frames := opts.frames(3000)
	theta := thetaFor(arch, true)

	out := metrics.NewTable("Fig. 1(a) — latency/accuracy vs cache size (ResNet101, UCF101-50)",
		"Cache size (%)", "Layers", "Lat.(ms)", "Acc.(%)", "Hit(%)")
	layerCounts := []int{0, 1, 3, 7, 10, 17, 26, 34}
	for _, n := range layerCounts {
		fe, err := newFixedEngine(space, nil, table, evenSites(arch.NumLayers, n), allClasses(ds.NumClasses), theta)
		if err != nil {
			return nil, err
		}
		s, err := motivationRun(space, fe, w, frames)
		if err != nil {
			return nil, err
		}
		out.AddRow(
			metrics.Fmt(100*float64(n)/float64(arch.NumLayers), 0),
			fmt.Sprintf("%d", n),
			metrics.Fmt(s.AvgLatencyMs, 2),
			metrics.Pct(s.Accuracy, 2),
			metrics.Pct(s.HitRatio, 1),
		)
	}
	out.AddNote("paper: latency minimal near 10%% of the full cache (~28%% below no-cache); accuracy loss < 2%%")
	return &Result{ID: "fig1a", Table: out}, nil
}

// Fig1b reproduces Fig. 1(b): all 34 layers active, per-layer hit ratio
// and hit accuracy.
func Fig1b(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(50)
	arch := model.ResNet101()
	space := semantics.NewSpace(ds, arch)
	table := core.InitialTable(space, 64, opts.Seed)
	w := opts.workload(ds)
	frames := opts.frames(4000)
	theta := thetaFor(arch, true)

	fe, err := newFixedEngine(space, nil, table, evenSites(arch.NumLayers, arch.NumLayers), allClasses(ds.NumClasses), theta)
	if err != nil {
		return nil, err
	}
	s, err := motivationRun(space, fe, w, frames)
	if err != nil {
		return nil, err
	}
	out := metrics.NewTable("Fig. 1(b) — per-layer hit ratio / hit accuracy (ResNet101, UCF101-50)",
		"Cache layer", "Hit ratio (%)", "Hit accuracy (%)")
	for _, layer := range sortedLayerKeys(s.PerLayerHitRatio) {
		out.AddRow(
			fmt.Sprintf("%d", layer),
			metrics.Pct(s.PerLayerHitRatio[layer], 2),
			metrics.Pct(s.PerLayerHitAccuracy[layer], 1),
		)
	}
	out.AddNote("overall: hit ratio %s%%, hit accuracy %s%%", metrics.Pct(s.HitRatio, 1), metrics.Pct(s.HitAccuracy, 1))
	out.AddNote("paper: hit ratio high at shallow and deep layers, low in the middle; hit accuracy lower at shallow/deep than middle")
	return &Result{ID: "fig1b", Table: out}, nil
}

// Table1 reproduces Table I: latency/accuracy vs the number of hot-spot
// classes in the cache, on UCF101-50 and ImageNet-100.
func Table1(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	arch := model.ResNet101()
	theta := thetaFor(arch, true)
	out := metrics.NewTable("Table I — hot-spot class count (ResNet101)",
		"Classes", "UCF Lat.(ms)", "UCF Acc.(%)", "IN Lat.(ms)", "IN Acc.(%)")

	type cell struct{ lat, acc string }
	counts := []int{0, 10, 30, 50, 70, 90}
	cells := make(map[string]map[int]cell)
	for _, dsName := range []string{"UCF", "IN"} {
		var ds *dataset.Spec
		if dsName == "UCF" {
			ds = dataset.UCF101().Subset(50)
		} else {
			ds = dataset.ImageNet100()
		}
		space := semantics.NewSpace(ds, arch)
		table := core.InitialTable(space, 64, opts.Seed)
		w := opts.workload(ds)
		frames := opts.frames(3000)
		cells[dsName] = make(map[int]cell)
		for _, k := range counts {
			kk := k
			if kk > ds.NumClasses {
				kk = ds.NumClasses
			}
			sites := evenSites(arch.NumLayers, 4)
			if kk == 0 {
				sites = nil
			}
			fe, err := newFixedEngine(space, nil, table, sites, allClasses(ds.NumClasses)[:kk], theta)
			if err != nil {
				return nil, err
			}
			s, err := motivationRun(space, fe, w, frames)
			if err != nil {
				return nil, err
			}
			cells[dsName][k] = cell{lat: metrics.Fmt(s.AvgLatencyMs, 2), acc: metrics.Pct(s.Accuracy, 2)}
		}
	}
	for _, k := range counts {
		out.AddRow(fmt.Sprintf("%d", k),
			cells["UCF"][k].lat, cells["UCF"][k].acc,
			cells["IN"][k].lat, cells["IN"][k].acc)
	}
	out.AddNote("paper: accuracy collapses at 10–30 classes (erroneous hits), stabilizes from ~50; latency lowest at small caches, rises past 50")
	return &Result{ID: "table1", Table: out}, nil
}
