package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/federation"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/xrand"
)

// churnFleet builds n federated nodes over one shared dataset
// construction — the shared ServerConfig.Seed is what makes the initial
// table common knowledge, so a join snapshot only carries what the fleet
// LEARNED.
func churnFleet(n, startID int, relay bool, space *semantics.Space, cfg core.ServerConfig, init *core.ServerInit) []*federation.Node {
	nodes := make([]*federation.Node, n)
	for i := range nodes {
		nodes[i] = federation.NewNode(core.NewServerFrom(space, cfg, init), federation.NodeConfig{ID: startID + i, Relay: relay})
	}
	return nodes
}

// churnUpload pushes one scripted cell update into a node — the
// experiment drives raw evidence through the sync tier without paying
// for full client engines, which is what makes 256-node fleets cheap
// enough to measure.
func churnUpload(ctx context.Context, n *federation.Node, rng *rand.Rand) error {
	classes, layers := n.Server().Shape()
	sess, err := n.Open(ctx, 10_000+n.ID())
	if err != nil {
		return err
	}
	defer sess.Close()
	class := rng.IntN(classes)
	vec := make([]float32, model.Dim)
	for i := range vec {
		vec[i] = float32(rng.Float64())
	}
	freq := make([]float64, classes)
	freq[class] = 1
	return sess.Upload(ctx, core.UpdateReport{
		Freq:  freq,
		Cells: []core.UpdateCell{{Class: class, Layer: rng.IntN(layers), Count: 8, Vec: vec}},
	})
}

// runChurnRounds drives the scripted workload: every node uploads one
// cell per round, then the fleet syncs once over topo.
func runChurnRounds(ctx context.Context, nodes []*federation.Node, topo *federation.Topology, rounds int, rng *rand.Rand) error {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if err := churnUpload(ctx, n, rng); err != nil {
				return err
			}
		}
		if err := federation.SyncNodes(nodes, topo); err != nil {
			return err
		}
	}
	return nil
}

// runChurnRoundsAE is runChurnRounds plus one pull anti-entropy
// exchange per node per round: each node reconciles ledgers with a
// sampled peer over the digest/pull frames — the wire fleet's
// -anti-entropy cadence compressed into the in-process experiment.
// Peer sampling draws from its own rng so the upload script stays
// byte-identical to a runChurnRounds arm driven by the same rng seed.
func runChurnRoundsAE(ctx context.Context, nodes []*federation.Node, topo *federation.Topology, rounds int, rng, aeRng *rand.Rand) error {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			if err := churnUpload(ctx, n, rng); err != nil {
				return err
			}
		}
		if err := federation.SyncNodes(nodes, topo); err != nil {
			return err
		}
		for i := range nodes {
			peer := nodes[(i+1+aeRng.IntN(len(nodes)-1))%len(nodes)]
			if _, err := federation.AntiEntropyExchange(nodes[i], peer); err != nil {
				return err
			}
		}
	}
	return nil
}

// fleetBytes sums outbound sync bytes across the fleet.
func fleetBytes(nodes []*federation.Node) int64 {
	var total int64
	for _, n := range nodes {
		total += n.Stats().BytesSent
	}
	return total
}

// fleetByteSplit sums per-channel outbound accounting across the fleet:
// push (delta sync), digest (anti-entropy negotiation frames) and pull
// (anti-entropy repair payloads).
func fleetByteSplit(nodes []*federation.Node) (push, digest, pull int64) {
	for _, n := range nodes {
		st := n.Stats()
		push += st.BytesSent
		digest += st.DigestBytes
		pull += st.PullBytes
	}
	return
}

// ChurnExp measures the elastic-federation tier: gossip fanout-k sync
// bytes per node against full mesh as the fleet grows (16/64/256 at full
// scale), then a membership churn cycle — a snapshot-bootstrap join
// whose cost is compared against replaying the fleet's wire history, and
// a crash the surviving fleet syncs straight through.
func ChurnExp(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ctx := context.Background()

	// A compact space keeps the 256-node arm tractable; the sync tier's
	// byte accounting is what is under test, not the cache policy.
	ds := dataset.ESC50().Subset(10)
	arch := model.VGG16BN()
	space := newSpace(ds, arch)
	cfg := core.ServerConfig{Theta: thetaFor(arch, true), Seed: opts.Seed, ProfileSamples: 120, InitSamplesPerClass: 16}
	init := core.BuildServerInit(space, cfg)
	rounds := opts.rounds(6)

	out := metrics.NewTable("Churn — gossip vs mesh sync traffic, anti-entropy split and elastic membership (VGG16BN, ESC50-10)",
		"Arm", "Nodes", "Push KiB/node/round", "Digest KiB", "Pull KiB", "Catch-up KiB")

	// Fleet-size sweep: mesh per-node bytes grow with the fleet (every
	// node pushes to n-1 peers); gossip pins per-node cost to fanout k.
	sizes := []int{16, 64, 256}
	if opts.Scale < 1 {
		for i, s := range sizes {
			if s = int(float64(s) * opts.Scale); s < 4 {
				s = 4
			}
			sizes[i] = s
		}
	}
	var meshPerNode, gossipPerNode float64 // largest-size figures for the note
	var gossipBaseBytes int64              // base-size gossip total, legacy comparison baseline
	for _, n := range sizes {
		for _, arm := range []string{"mesh", "gossip"} {
			var topo *federation.Topology
			var err error
			if arm == "mesh" {
				topo, err = federation.NewTopology(federation.Mesh, n)
			} else {
				topo, err = federation.NewGossipTopology(n, federation.DefaultGossipFanout, opts.Seed)
			}
			if err != nil {
				return nil, err
			}
			nodes := churnFleet(n, 0, topo.Forwarding(), space, cfg, init)
			rng := xrand.New(opts.Seed, 0xC0CA, uint64(n))
			if err := runChurnRounds(ctx, nodes, topo, rounds, rng); err != nil {
				return nil, fmt.Errorf("churn %s n=%d: %w", arm, n, err)
			}
			total := fleetBytes(nodes)
			perNode := float64(total) / float64(n) / float64(rounds) / 1024
			label := arm
			if arm == "gossip" {
				label = fmt.Sprintf("gossip (k=%d)", federation.DefaultGossipFanout)
				if n == sizes[0] {
					gossipBaseBytes = total
				}
			}
			out.AddRow(label, fmt.Sprintf("%d", n), metrics.Fmt(perNode, 1), "")
			if n == sizes[len(sizes)-1] {
				if arm == "mesh" {
					meshPerNode = perNode
				} else {
					gossipPerNode = perNode
				}
			}
		}
	}

	// Self-healing arms at the base fleet size. First the same gossip
	// workload as the sweep on the pre-self-healing (legacy, untagged)
	// wire format: origin tags cost bytes per shipped cell, but they let
	// nodes discard echoed evidence at apply time, so echoes stop
	// re-entering delta sweeps and tagged steady-state push traffic lands
	// below the legacy baseline (the in-repo assertion is
	// TestChurnGossipBytesBelowLegacy).
	aeN := sizes[0]
	aeTopo, err := federation.NewGossipTopology(aeN, federation.DefaultGossipFanout, opts.Seed)
	if err != nil {
		return nil, err
	}
	div := float64(aeN) * float64(rounds) * 1024
	legacy := churnFleet(aeN, aeN, aeTopo.Forwarding(), space, cfg, init)
	for _, n := range legacy {
		n.SetLegacy(true)
	}
	if err := runChurnRounds(ctx, legacy, aeTopo, rounds, xrand.New(opts.Seed, 0xC0CA, uint64(aeN))); err != nil {
		return nil, fmt.Errorf("churn legacy: %w", err)
	}
	legacyPush := fleetBytes(legacy)
	out.AddRow("  legacy wire (untagged)", fmt.Sprintf("%d", aeN), metrics.Fmt(float64(legacyPush)/div, 1), "", "", "")
	if gossipBaseBytes >= legacyPush {
		out.AddNote("WARNING: tagged gossip traffic (%.1f KiB/node/round) did not undercut the legacy wire baseline (%.1f)",
			float64(gossipBaseBytes)/div, float64(legacyPush)/div)
	} else {
		out.AddNote("origin-tagged gossip pushes %.1f KiB/node/round vs %.1f on the legacy wire — %.1f%% saved by discarding echoed evidence instead of re-crediting it",
			float64(gossipBaseBytes)/div, float64(legacyPush)/div, 100*(1-float64(gossipBaseBytes)/float64(legacyPush)))
	}

	// Then pull anti-entropy layered on the tagged workload, split per
	// channel. Push rises above the push-only arm — repaired evidence is
	// novel to the repaired node and propagates onward — which is repair
	// traffic doing its job, not overhead; digest KiB is the steady
	// per-round price of the negotiation.
	tagged := churnFleet(aeN, 0, aeTopo.Forwarding(), space, cfg, init)
	if err := runChurnRoundsAE(ctx, tagged, aeTopo, rounds, xrand.New(opts.Seed, 0xC0CA, 0xA17E), xrand.New(opts.Seed, 0xAE, 0xA17E)); err != nil {
		return nil, fmt.Errorf("churn anti-entropy: %w", err)
	}
	push, digest, pull := fleetByteSplit(tagged)
	out.AddRow("gossip+anti-entropy", fmt.Sprintf("%d", aeN),
		metrics.Fmt(float64(push)/div, 1), metrics.Fmt(float64(digest)/div, 1), metrics.Fmt(float64(pull)/div, 1), "")

	// Membership churn on the base fleet: build history, then a node
	// joins from one snapshot and a node crashes mid-run.
	n0 := sizes[0]
	topo, err := federation.NewTopology(federation.Mesh, n0)
	if err != nil {
		return nil, err
	}
	nodes := churnFleet(n0, 0, false, space, cfg, init)
	rng := xrand.New(opts.Seed, 0xC0CA, 0xFEED)
	if err := runChurnRounds(ctx, nodes, topo, rounds, rng); err != nil {
		return nil, fmt.Errorf("churn history: %w", err)
	}
	historyPerNode := float64(fleetBytes(nodes)) / float64(n0) / 1024

	// Snapshot join: the joiner bootstraps from ONE batch off nodes[0];
	// the honest byte count is the encoded wire frame the snapshot
	// occupies. Replaying the fleet's history would have cost what an
	// average member spent shipping it round by round.
	classes, layers := space.DS.NumClasses, space.Arch.NumLayers
	joiner := federation.NewNode(core.NewServerFrom(space, cfg, init), federation.NodeConfig{ID: n0})
	snap, err := nodes[0].HandlePeerJoin(&protocol.PeerJoin{
		NodeID: int32(n0), NumClasses: int32(classes), NumLayers: int32(layers), WantSnapshot: true,
	})
	if err != nil {
		return nil, fmt.Errorf("churn join: %w", err)
	}
	frame, err := protocol.Encode(&protocol.Message{Version: protocol.V2, Type: protocol.TypePeerSnapshot, PeerSnapshot: snap})
	if err != nil {
		return nil, fmt.Errorf("churn join encode: %w", err)
	}
	joinKiB := float64(len(frame)) / 1024
	if _, err := joiner.ApplySnapshot(snap, len(frame)); err != nil {
		return nil, fmt.Errorf("churn join apply: %w", err)
	}
	out.AddRow("snapshot join", fmt.Sprintf("%d+1", n0), "", "", "", metrics.Fmt(joinKiB, 1))
	out.AddRow("  vs history replay", fmt.Sprintf("%d+1", n0), "", "", "", metrics.Fmt(historyPerNode, 1))

	// Crash: drop a member with no leave announcement; the survivors
	// (joiner included) keep syncing over the shrunk graph.
	survivors := append(append([]*federation.Node{}, nodes[:1]...), nodes[2:]...)
	survivors = append(survivors, joiner)
	crashTopo, err := federation.NewTopology(federation.Mesh, len(survivors))
	if err != nil {
		return nil, err
	}
	preCrash := fleetBytes(survivors)
	crashRounds := opts.rounds(2)
	if err := runChurnRounds(ctx, survivors, crashTopo, crashRounds, rng); err != nil {
		return nil, fmt.Errorf("churn post-crash: %w", err)
	}
	postKiB := float64(fleetBytes(survivors)-preCrash) / float64(len(survivors)) / float64(crashRounds) / 1024
	out.AddRow("post-crash fleet", fmt.Sprintf("%d-1+1", n0+1), metrics.Fmt(postKiB, 1), "")

	if meshPerNode > 0 {
		out.AddNote("gossip per-node sync traffic at the largest fleet is %.1f%% of mesh (%.1f vs %.1f KiB/node/round) — O(k) links instead of O(n)",
			100*gossipPerNode/meshPerNode, gossipPerNode, meshPerNode)
	}
	if historyPerNode > 0 {
		out.AddNote("snapshot join bootstraps in %.1f KiB, %.1f%% of the %.1f KiB an average member spent shipping the same history round by round — join cost scales with what the fleet learned, not how long it ran",
			joinKiB, 100*joinKiB/historyPerNode, historyPerNode)
	}
	out.AddNote("the crash round needs no reconfiguration: deltas commit only on successful exchange, so survivors resend the dead member's share nowhere and owe it nothing")
	out.AddNote("fixed seed reproduces identical rows run-to-run (seeded gossip sampling and scripted uploads)")
	return &Result{ID: "churn", Table: out}, nil
}
