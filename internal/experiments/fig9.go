package experiments

import (
	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
)

// Fig9 reproduces Fig. 9: the component ablation on a 50-class UCF101
// subset across four models. Normal freezes both components (a static
// first allocation and a static global cache, i.e. plain semantic caching);
// DCA enables dynamic cache allocation only; GCU enables global cache
// updates only; DCA+GCU is full CoCa. The workload includes gradual
// semantic drift, the condition GCU exists to handle.
func Fig9(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	ds := dataset.UCF101().Subset(50)
	out := metrics.NewTable("Fig. 9 — ablation (UCF101-50)",
		"Model", "Arm", "Lat.(ms)", "Acc.(%)", "Hit(%)")

	arms := []struct {
		name               string
		dynAlloc, globUpds bool
	}{
		{"Normal", false, false},
		{"GCU", false, true},
		{"DCA", true, false},
		{"DCA+GCU", true, true},
	}
	for _, arch := range []*model.Arch{model.VGG16BN(), model.ResNet50(), model.ResNet101(), model.ResNet152()} {
		space := semantics.NewSpace(ds, arch)
		theta := thetaFor(arch, true)
		for _, arm := range arms {
			ms := newMethodSet(space, 4, theta, 300, opts.frames(300), opts.Seed)
			engines, _, err := ms.coca(theta, func(cfg *core.ClusterConfig) {
				cfg.Client.DisableDynamicAllocation = !arm.dynAlloc
				cfg.Client.DriftWeight = 0.05
				cfg.Client.DriftPerRound = 0.15
				cfg.Server.DisableGlobalUpdates = !arm.globUpds
			})
			if err != nil {
				return nil, err
			}
			w := opts.workload(ds)
			s, err := runEngines(engines, w, opts.rounds(6), ms.frames, 1)
			if err != nil {
				return nil, err
			}
			out.AddRow(arch.Name, arm.name,
				metrics.Fmt(s.AvgLatencyMs, 2),
				metrics.Pct(s.Accuracy, 2),
				metrics.Pct(s.HitRatio, 1))
		}
	}
	out.AddNote("paper: DCA dominates latency reduction (ResNet152: 39.2%% vs GCU's 6.6%%); DCA+GCU best overall")
	return &Result{ID: "fig9", Table: out}, nil
}
