package experiments

import (
	"context"
	"testing"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/federation"
	"coca/internal/model"
	"coca/internal/xrand"
)

// TestChurnGossipBytesBelowLegacy pins the self-healing tier's traffic
// win at the churn experiment's base fleet size: an origin-tagged n=16
// gossip fleet must spend strictly fewer push bytes than the same
// workload on the legacy (untagged) wire format. Tags cost bytes per
// shipped cell, but they let nodes discard echoed evidence at apply
// time, so echoes stop re-entering delta sweeps — at fleet scale the
// steady-state saving dominates the per-cell overhead.
func TestChurnGossipBytesBelowLegacy(t *testing.T) {
	ctx := context.Background()
	ds := dataset.ESC50().Subset(10)
	arch := model.VGG16BN()
	space := newSpace(ds, arch)
	cfg := core.ServerConfig{Theta: thetaFor(arch, true), Seed: 2, ProfileSamples: 120, InitSamplesPerClass: 16}
	init := core.BuildServerInit(space, cfg)
	const n, rounds = 16, 6
	topo, err := federation.NewGossipTopology(n, federation.DefaultGossipFanout, 2)
	if err != nil {
		t.Fatal(err)
	}

	run := func(legacy bool) int64 {
		nodes := churnFleet(n, 0, topo.Forwarding(), space, cfg, init)
		for _, nd := range nodes {
			nd.SetLegacy(legacy)
		}
		// Identical upload script on both arms: same rng seed, and
		// runChurnRounds draws nothing beyond the uploads.
		if err := runChurnRounds(ctx, nodes, topo, rounds, xrand.New(2, 0xC0CA, 0xA17E)); err != nil {
			t.Fatal(err)
		}
		return fleetBytes(nodes)
	}

	tagged := run(false)
	legacy := run(true)
	if tagged >= legacy {
		t.Fatalf("tagged gossip bytes %d not below the legacy baseline %d (n=%d, %d rounds)",
			tagged, legacy, n, rounds)
	}
	t.Logf("n=%d gossip over %d rounds: tagged %.1f KiB/node/round vs legacy %.1f (%.1f%% saved)",
		n, rounds, float64(tagged)/float64(n*rounds)/1024, float64(legacy)/float64(n*rounds)/1024,
		100*(1-float64(tagged)/float64(legacy)))
}
