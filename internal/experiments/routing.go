package experiments

import (
	"context"
	"fmt"
	"reflect"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/federation"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/routing"
	"coca/internal/stream"
	"coca/internal/xrand"
)

// routingArm is one placement-policy configuration of the routing
// experiment.
type routingArm struct {
	name           string
	policy         routing.Policy
	rebalanceEvery int
}

// routingWorkload is the regime where placement matters: strongly
// non-IID clients (each has a skewed class profile a server could
// specialize for), long-tail popularity and working-set churn. Peer sync
// is disabled in the experiment so hit-ratio differences are
// attributable to placement alone.
func routingWorkload(ds *dataset.Spec, clients int, seed uint64) stream.Config {
	return stream.Config{
		Dataset:         ds,
		NumClients:      clients,
		ClassWeights:    xrand.LongTailWeights(ds.NumClasses, 10),
		NonIIDLevel:     6,
		SceneMeanFrames: 20,
		WorkingSetSize:  8,
		WorkingSetChurn: 0.2,
		Seed:            seed,
	}
}

// runRoutingArm builds and runs one routed fleet, returning the fleet
// summary, the router stats and (when trackRounds) the per-round fleet
// hit ratios collected at each round barrier.
func runRoutingArm(opts Options, arm routingArm, servers, clients, rounds, skip, frames, budget int, init *core.ServerInit, onRound func(*federation.RoutedCluster, int)) (metrics.Summary, routing.Stats, []float64, error) {
	ds := dataset.UCF101().Subset(30)
	arch := model.ResNet101()
	space := newSpace(ds, arch)
	theta := thetaFor(arch, true)
	var cluster *federation.RoutedCluster
	var roundHits []float64
	var prevFrames, prevHits float64
	cfg := federation.RoutedConfig{
		ServerInit:     init,
		NumServers:     servers,
		NumClients:     clients,
		Routing:        routing.Config{Policy: arm.policy, ShardSize: servers, Seed: opts.Seed},
		RebalanceEvery: arm.rebalanceEvery,
		SyncEvery:      0,
		Client: core.ClientConfig{
			Theta: theta, Budget: budget, RoundFrames: frames,
			EnvBiasWeight: 0.05,
		},
		Server:     core.ServerConfig{Theta: theta, Seed: opts.Seed},
		Stream:     routingWorkload(ds, clients, opts.Seed),
		Rounds:     rounds,
		SkipRounds: skip,
		BatchSize:  opts.BatchSize,
		OnRound: func(round int) {
			if onRound != nil {
				onRound(cluster, round)
			}
			// Per-round fleet hit ratio from successive combined deltas
			// (only meaningful when skip == 0: every frame is recorded).
			if skip == 0 {
				s := cluster.Combined().Summary()
				f, h := float64(s.Frames), s.HitRatio*float64(s.Frames)
				if df := f - prevFrames; df > 0 {
					roundHits = append(roundHits, (h-prevHits)/df)
				}
				prevFrames, prevHits = f, h
			}
		},
	}
	var err error
	cluster, err = federation.NewRoutedCluster(space, cfg)
	if err != nil {
		return metrics.Summary{}, routing.Stats{}, nil, err
	}
	defer cluster.Close()
	combined, err := cluster.Run()
	if err != nil {
		return metrics.Summary{}, routing.Stats{}, nil, err
	}
	return combined.Summary(), cluster.Router.Stats(), roundHits, nil
}

// mirroredCoord/mirroredSession feed a migration target the same uploads
// its primary saw (the federation sync plane's job in production), so a
// forced migration can be checked for bitwise allocation equivalence
// against an uninterrupted baseline — allocation is a pure function of
// the global table, the layer profile and the client's status.
type mirroredCoord struct{ primary, shadow core.Coordinator }

func (m *mirroredCoord) Open(ctx context.Context, clientID int) (core.Session, error) {
	p, err := m.primary.Open(ctx, clientID)
	if err != nil {
		return nil, err
	}
	s, err := m.shadow.Open(ctx, clientID)
	if err != nil {
		_ = p.Close()
		return nil, err
	}
	return &mirroredSession{p: p, s: s}, nil
}

type mirroredSession struct{ p, s core.Session }

func (m *mirroredSession) Info() core.RegisterInfo { return m.p.Info() }
func (m *mirroredSession) Allocate(ctx context.Context, status core.StatusReport) (core.Delta, error) {
	return m.p.Allocate(ctx, status)
}
func (m *mirroredSession) Upload(ctx context.Context, upd core.UpdateReport) error {
	if err := m.p.Upload(ctx, upd); err != nil {
		return err
	}
	return m.s.Upload(ctx, upd)
}
func (m *mirroredSession) Close() error {
	err := m.p.Close()
	if serr := m.s.Close(); err == nil {
		err = serr
	}
	return err
}

// migrationEquivalence runs the live-migration safety check at small
// scale: a client is force-migrated mid-stream to a server holding the
// same global state and its per-round allocations are compared bitwise
// against an uninterrupted single-server run. It returns the number of
// divergent rounds (0 = bitwise-identical recovery).
func migrationEquivalence(seed uint64) (divergent int, rounds int, err error) {
	const (
		nRounds     = 8
		migrateAt   = 4
		roundFrames = 40
	)
	ctx := context.Background()
	space := newSpace(dataset.ESC50().Subset(10), model.VGG16BN())
	scfg := core.ServerConfig{Theta: 0.035, Seed: seed, ProfileSamples: 200, InitSamplesPerClass: 16}
	init := core.BuildServerInit(space, scfg)
	newServer := func() *core.Server { return core.NewServerFrom(space, scfg, init) }
	ccfg := core.ClientConfig{ID: 0, Theta: 0.035, Budget: 40, RoundFrames: roundFrames}

	runArm := func(coord core.Coordinator, onRound func(round int)) ([]core.Allocation, error) {
		cl, err := core.NewClient(ctx, space, coord, ccfg)
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		part, err := stream.NewPartition(stream.Config{
			Dataset: space.DS, NumClients: 1, SceneMeanFrames: 20,
			WorkingSetSize: 6, WorkingSetChurn: 0.05, Seed: seed + 2,
		})
		if err != nil {
			return nil, err
		}
		gen := part.Client(0)
		allocs := make([]core.Allocation, 0, nRounds)
		for round := 0; round < nRounds; round++ {
			if onRound != nil {
				onRound(round)
			}
			if err := cl.BeginRound(); err != nil {
				return nil, err
			}
			allocs = append(allocs, cl.View().Allocation())
			for f := 0; f < roundFrames; f++ {
				cl.Infer(gen.Next())
			}
			if err := cl.EndRound(); err != nil {
				return nil, err
			}
		}
		return allocs, nil
	}

	base, err := runArm(newServer(), nil)
	if err != nil {
		return 0, 0, err
	}
	shadow := newServer()
	router := routing.NewRouter(
		[]core.Coordinator{&mirroredCoord{primary: newServer(), shadow: shadow}, shadow},
		routing.Config{Policy: routing.PolicyStatic, ShardSize: 2},
	)
	moved, err := runArm(router, func(round int) {
		if round == migrateAt {
			router.TripBreaker(0)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	for round := range base {
		if !reflect.DeepEqual(base[round], moved[round]) {
			divergent++
		}
	}
	return divergent, nRounds, nil
}

// RoutingExp evaluates the routing/admission tier (beyond the paper):
// the placement-policy comparison — random vs consistent-hash vs
// semantic-aware placement of a strongly non-IID fleet over partitioned
// servers — plus a simulated brown-out measuring migration cost and
// time-to-recover, and the live-migration bitwise-equivalence check.
func RoutingExp(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const (
		servers = 4
		clients = 16
		budget  = 60
	)
	rounds := opts.rounds(10)
	frames := opts.frames(200)
	skip := rounds / 3

	// All arms share one server construction (same config, same seed).
	var init *core.ServerInit
	{
		ds := dataset.UCF101().Subset(30)
		arch := model.ResNet101()
		theta := thetaFor(arch, true)
		init = core.BuildServerInit(newSpace(ds, arch), core.ServerConfig{Theta: theta, Seed: opts.Seed})
	}

	out := metrics.NewTable("Routing tier — placement policy, admission and live migration (ResNet101, UCF101-30, no peer sync)",
		"Arm", "Lat.(ms)", "p95(ms)", "Acc.(%)", "Hit(%)", "Migrations", "Rebalanced")

	arms := []routingArm{
		{name: "random placement", policy: routing.PolicyRandom},
		{name: "consistent-hash", policy: routing.PolicyHash},
		{name: "semantic (rebalance=2)", policy: routing.PolicySemantic, rebalanceEvery: 2},
	}
	hitByArm := map[string]float64{}
	for _, arm := range arms {
		sum, st, _, err := runRoutingArm(opts, arm, servers, clients, rounds, skip, frames, budget, init, nil)
		if err != nil {
			return nil, fmt.Errorf("routing arm %q: %w", arm.name, err)
		}
		hitByArm[arm.name] = sum.HitRatio
		out.AddRow(arm.name,
			metrics.Fmt(sum.AvgLatencyMs, 2),
			metrics.Fmt(sum.P95LatencyMs, 2),
			metrics.Pct(sum.Accuracy, 2),
			metrics.Pct(sum.HitRatio, 2),
			fmt.Sprintf("%d", st.Migrations),
			fmt.Sprintf("%d", st.Rebalanced),
		)
	}

	// Brown-out: hash placement, server 0's breaker force-opened after
	// round brownAt. Every client placed there migrates at its next
	// allocation; the per-round fleet hit ratio dips (migrated clients
	// resync and their new servers learn their classes) and recovers.
	brownAt := rounds / 3
	var brownStats routing.Stats
	_, brownStats, roundHits, err := runRoutingArm(opts, routingArm{policy: routing.PolicyHash}, servers, clients, rounds, 0, frames, budget, init,
		func(c *federation.RoutedCluster, round int) {
			if round == brownAt {
				c.Router.TripBreaker(0)
			}
		})
	if err != nil {
		return nil, fmt.Errorf("routing brown-out: %w", err)
	}
	dip, dipRound, recoverRound := brownOutRecovery(roundHits, brownAt)
	out.AddRow("brown-out (hash, trip@"+fmt.Sprint(brownAt)+")",
		"", "", "", metrics.Pct(dip, 2),
		fmt.Sprintf("%d", brownStats.Migrations),
		fmt.Sprintf("%d", brownStats.Rebalanced),
	)

	divergent, eqRounds, err := migrationEquivalence(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("routing migration equivalence: %w", err)
	}

	if h := hitByArm["semantic (rebalance=2)"]; h > 0 {
		out.AddNote("semantic placement hits %.2f%% vs %.2f%% hash / %.2f%% random — grouping profile-similar clients concentrates each server's global table on the classes its fleet actually streams",
			100*h, 100*hitByArm["consistent-hash"], 100*hitByArm["random placement"])
	}
	if dipRound >= 0 {
		if recoverRound >= 0 {
			out.AddNote("brown-out at round %d: fleet hit ratio dips to %.1f%% (round %d) and recovers to the pre-trip level in %d round(s) — migrated sessions resync their allocation via the delta protocol's version-0 full table",
				brownAt, 100*dip, dipRound, recoverRound-brownAt)
		} else {
			out.AddNote("brown-out at round %d: fleet hit ratio dips to %.1f%% (round %d) and is still recovering at run end (scale up -scale for the full recovery curve)",
				brownAt, 100*dip, dipRound)
		}
	}
	if divergent == 0 {
		out.AddNote("live-migration safety: a session force-migrated mid-stream recovers allocations bitwise-identical to an uninterrupted run over all %d rounds", eqRounds)
	} else {
		out.AddNote("live-migration safety: %d of %d rounds diverged from the uninterrupted baseline — INVESTIGATE", divergent, eqRounds)
	}
	out.AddNote("fixed seed reproduces identical rows run-to-run (placement, workload and breaker schedule are all deterministic)")
	return &Result{ID: "routing", Table: out}, nil
}

// brownOutRecovery scans per-round fleet hit ratios for the post-trip
// dip and the first round back at the pre-trip baseline (95% of the mean
// hit ratio over the rounds before the trip). Returns dip value, dip
// round and recovery round (-1 when absent).
func brownOutRecovery(roundHits []float64, brownAt int) (dip float64, dipRound, recoverRound int) {
	dipRound, recoverRound = -1, -1
	// The trip fires at the round-brownAt barrier, so the first affected
	// round is brownAt+1 (metrics are per completed round).
	if brownAt <= 0 || brownAt+1 >= len(roundHits) {
		return 0, -1, -1
	}
	// Pre-trip baseline over the later warm rounds only: the cold-start
	// rounds would drag the recovery bar below the dip itself.
	lo := brownAt / 2
	pre := 0.0
	for _, h := range roundHits[lo : brownAt+1] {
		pre += h
	}
	pre /= float64(brownAt + 1 - lo)
	dip, dipRound = roundHits[brownAt+1], brownAt+1
	for r := brownAt + 2; r < len(roundHits); r++ {
		if roundHits[r] < dip {
			dip, dipRound = roundHits[r], r
		}
	}
	for r := dipRound; r < len(roundHits); r++ {
		if roundHits[r] >= 0.95*pre {
			recoverRound = r
			break
		}
	}
	return dip, dipRound, recoverRound
}
