package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, s := range []*Spec{ImageNet100(), UCF101(), ESC50()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestPresetClassCounts(t *testing.T) {
	if got := ImageNet100().NumClasses; got != 100 {
		t.Errorf("ImageNet-100 classes = %d", got)
	}
	if got := UCF101().NumClasses; got != 101 {
		t.Errorf("UCF101 classes = %d", got)
	}
	if got := ESC50().NumClasses; got != 50 {
		t.Errorf("ESC-50 classes = %d", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []*Spec{
		{Name: "x", NumClasses: 1, BaseAccuracy: 0.5, GroupSize: 1, DifficultyAlpha: 1, DifficultyBeta: 1},
		{Name: "x", NumClasses: 10, BaseAccuracy: 0, GroupSize: 1, DifficultyAlpha: 1, DifficultyBeta: 1},
		{Name: "x", NumClasses: 10, BaseAccuracy: 1.5, GroupSize: 1, DifficultyAlpha: 1, DifficultyBeta: 1},
		{Name: "x", NumClasses: 10, BaseAccuracy: 0.5, GroupSize: 0, DifficultyAlpha: 1, DifficultyBeta: 1},
		{Name: "x", NumClasses: 10, BaseAccuracy: 0.5, GroupSize: 1, DifficultyAlpha: 0, DifficultyBeta: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSubset(t *testing.T) {
	base := UCF101()
	sub := base.Subset(50)
	if sub.NumClasses != 50 {
		t.Fatalf("subset classes = %d", sub.NumClasses)
	}
	if sub.Name != "UCF101-50" {
		t.Fatalf("subset name = %q", sub.Name)
	}
	if base.NumClasses != 101 {
		t.Fatal("Subset mutated the base spec")
	}
}

func TestSubsetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UCF101().Subset(500)
}

func TestGroupAndConfusables(t *testing.T) {
	s := ImageNet100() // GroupSize 5
	if s.Group(0) != 0 || s.Group(4) != 0 || s.Group(5) != 1 {
		t.Fatal("Group boundaries wrong")
	}
	c := s.Confusables(7)
	want := map[int]bool{5: true, 6: true, 8: true, 9: true}
	if len(c) != 4 {
		t.Fatalf("Confusables(7) = %v", c)
	}
	for _, x := range c {
		if !want[x] {
			t.Fatalf("Confusables(7) = %v, unexpected %d", c, x)
		}
	}
}

func TestConfusablesLastPartialGroup(t *testing.T) {
	s := UCF101() // 101 classes, GroupSize 5 => last group is {100}
	c := s.Confusables(100)
	if len(c) != 0 {
		t.Fatalf("Confusables(100) = %v, want empty", c)
	}
}

func TestNewSampleDeterministic(t *testing.T) {
	s := UCF101()
	a := s.NewSample(3, 42, 7)
	b := s.NewSample(3, 42, 7)
	if a != b {
		t.Fatalf("same seed parts gave different samples: %+v vs %+v", a, b)
	}
	c := s.NewSample(3, 42, 8)
	if a.Seed == c.Seed {
		t.Fatal("different seed parts gave same sample seed")
	}
}

func TestNewSampleDifficultyDistribution(t *testing.T) {
	s := UCF101()
	const n = 5000
	var sum float64
	var hard int
	for i := 0; i < n; i++ {
		smp := s.NewSample(i%s.NumClasses, uint64(i))
		if smp.Difficulty < 0 || smp.Difficulty >= 1 {
			t.Fatalf("difficulty out of range: %v", smp.Difficulty)
		}
		sum += smp.Difficulty
		if smp.Difficulty > 0.7 {
			hard++
		}
	}
	mean := sum / n
	// Beta(1.1, 2.4) mean = 1.1/3.5 ≈ 0.314.
	if math.Abs(mean-0.314) > 0.03 {
		t.Fatalf("difficulty mean = %v, want ~0.314", mean)
	}
	// Heavy right tail must exist but be a minority.
	frac := float64(hard) / n
	if frac < 0.02 || frac > 0.25 {
		t.Fatalf("hard-sample fraction = %v, want small minority", frac)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ImageNet-100", "UCF101", "ESC-50"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ByName("CIFAR"); err == nil {
		t.Error("ByName should reject unknown dataset")
	}
}

func TestPropertySampleClassPreserved(t *testing.T) {
	s := ImageNet100()
	f := func(classRaw uint8, seed uint64) bool {
		class := int(classRaw) % s.NumClasses
		smp := s.NewSample(class, seed)
		return smp.Class == class && smp.Difficulty >= 0 && smp.Difficulty < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGroupPartition(t *testing.T) {
	s := UCF101()
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % s.NumClasses
		b := int(bRaw) % s.NumClasses
		sameGroup := s.Group(a) == s.Group(b)
		inConf := false
		for _, c := range s.Confusables(a) {
			if c == b {
				inConf = true
			}
		}
		if a == b {
			return !inConf // a class is never its own confusable
		}
		return inConf == sameGroup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
