// Package dataset defines the synthetic dataset universes that stand in for
// the paper's ImageNet-100, UCF101 and ESC-50 benchmarks.
//
// The caching machinery never touches raw media — it only observes
// per-layer semantic vectors, class labels and final predictions. A dataset
// here is therefore specified by the properties that drive cache behaviour:
// the class count, how confusable classes are with one another, how
// per-sample difficulty is distributed, and what accuracy the full model
// reaches. Actual semantic vectors are produced by package semantics from
// these specs.
package dataset

import (
	"fmt"
	"math/rand/v2"

	"coca/internal/xrand"
)

// Spec describes a synthetic dataset.
type Spec struct {
	// Name identifies the dataset in tables and logs.
	Name string
	// NumClasses is the number of distinct classes (rows of the global
	// cache table).
	NumClasses int
	// Seed roots all prototype and sample randomness for this dataset.
	Seed uint64
	// BaseAccuracy is the top-1 accuracy the full (uncached) model is
	// calibrated to reach on this dataset, e.g. 0.806 for ResNet101 on a
	// 50-class UCF101 subset.
	BaseAccuracy float64
	// GroupSize controls confusability: classes are partitioned into
	// groups of this size and classes within a group share a feature
	// component, making them mutually confusable (e.g. different dog
	// breeds, similar actions).
	GroupSize int
	// ConfusionWeight scales the shared within-group component of class
	// prototypes. 0 disables confusion structure.
	ConfusionWeight float64
	// DifficultyAlpha and DifficultyBeta parametrize the Beta
	// distribution of per-sample difficulty in [0,1). Most mass should be
	// low (easy frames) with a heavy right tail (hard frames) so that
	// easy samples exit at shallow cache layers and hard ones late —
	// the mechanism behind the paper's Fig. 1(b).
	DifficultyAlpha, DifficultyBeta float64
}

// Validate reports whether the spec is well formed.
func (s *Spec) Validate() error {
	switch {
	case s.NumClasses < 2:
		return fmt.Errorf("dataset %q: NumClasses %d < 2", s.Name, s.NumClasses)
	case s.BaseAccuracy <= 0 || s.BaseAccuracy > 1:
		return fmt.Errorf("dataset %q: BaseAccuracy %v outside (0,1]", s.Name, s.BaseAccuracy)
	case s.GroupSize < 1:
		return fmt.Errorf("dataset %q: GroupSize %d < 1", s.Name, s.GroupSize)
	case s.DifficultyAlpha <= 0 || s.DifficultyBeta <= 0:
		return fmt.Errorf("dataset %q: difficulty Beta parameters must be positive", s.Name)
	}
	return nil
}

// Group returns the confusion-group index of class i.
func (s *Spec) Group(class int) int { return class / s.GroupSize }

// Confusables returns the classes sharing class's confusion group,
// excluding class itself. The result is freshly allocated.
func (s *Spec) Confusables(class int) []int {
	g := s.Group(class)
	lo := g * s.GroupSize
	hi := lo + s.GroupSize
	if hi > s.NumClasses {
		hi = s.NumClasses
	}
	out := make([]int, 0, s.GroupSize-1)
	for c := lo; c < hi; c++ {
		if c != class {
			out = append(out, c)
		}
	}
	return out
}

// Subset derives a spec restricted to the first n classes, as the paper does
// with "a subset of 50 classes from UCF101". Accuracy calibration targets
// are inherited; the derived name records the subset size.
func (s *Spec) Subset(n int) *Spec {
	if n < 2 || n > s.NumClasses {
		panic(fmt.Sprintf("dataset %q: invalid subset size %d", s.Name, n))
	}
	sub := *s
	sub.NumClasses = n
	sub.Name = fmt.Sprintf("%s-%d", s.Name, n)
	return &sub
}

// Sample is one inference request: a frame of class Class with difficulty
// Difficulty in [0,1). Seed roots the per-sample feature noise so the same
// Sample always produces the same semantic vectors.
type Sample struct {
	Class      int
	Difficulty float64
	Seed       uint64
}

// NewSample draws a sample of the given class with Beta-distributed
// difficulty, rooting its noise at the given seed parts.
func (s *Spec) NewSample(class int, seedParts ...uint64) Sample {
	seed := xrand.HashSeed(append([]uint64{s.Seed, uint64(class)}, seedParts...)...)
	return s.sampleAt(xrand.New(seed), class, seed)
}

// StreamSample is NewSample(class, p0, p1, p2) drawing through a reused
// stream: identical results, no allocation. The three fixed seed parts
// match the (workload seed, client, frame) addressing of stream.Generator.
func (s *Spec) StreamSample(st *xrand.Stream, class int, p0, p1, p2 uint64) Sample {
	seed := xrand.HashSeed(s.Seed, uint64(class), p0, p1, p2)
	return s.sampleAt(st.Seed(xrand.HashSeed(seed)), class, seed)
}

func (s *Spec) sampleAt(r *rand.Rand, class int, seed uint64) Sample {
	d := xrand.Beta(r, s.DifficultyAlpha, s.DifficultyBeta)
	if d >= 1 {
		d = 0.999999
	}
	return Sample{Class: class, Difficulty: d, Seed: seed}
}

// Preset datasets. Class counts match the real benchmarks; base accuracies
// match the paper's Edge-Only rows (Table I/II). Confusion and difficulty
// parameters are simulator calibration knobs documented in DESIGN.md.

// ImageNet100 mirrors the ImageNet-100 subset: 100 object classes.
func ImageNet100() *Spec {
	return &Spec{
		Name:            "ImageNet-100",
		NumClasses:      100,
		Seed:            0xD0A0_0001,
		BaseAccuracy:    0.8207,
		GroupSize:       5,
		ConfusionWeight: 1.0,
		DifficultyAlpha: 1.1,
		DifficultyBeta:  2.6,
	}
}

// UCF101 mirrors the UCF101 action-recognition benchmark: 101 action
// classes in 5 coarse action categories.
func UCF101() *Spec {
	return &Spec{
		Name:            "UCF101",
		NumClasses:      101,
		Seed:            0xD0A0_0002,
		BaseAccuracy:    0.7812,
		GroupSize:       5,
		ConfusionWeight: 1.0,
		DifficultyAlpha: 1.1,
		DifficultyBeta:  2.4,
	}
}

// ESC50 mirrors the ESC-50 environmental-sound benchmark: 50 sound classes
// in 5 major categories.
func ESC50() *Spec {
	return &Spec{
		Name:            "ESC-50",
		NumClasses:      50,
		Seed:            0xD0A0_0003,
		BaseAccuracy:    0.8500,
		GroupSize:       5,
		ConfusionWeight: 0.9,
		DifficultyAlpha: 1.1,
		DifficultyBeta:  2.8,
	}
}

// ByName returns the preset with the given name (as produced by the preset
// constructors), or an error for unknown names.
func ByName(name string) (*Spec, error) {
	switch name {
	case "ImageNet-100":
		return ImageNet100(), nil
	case "UCF101":
		return UCF101(), nil
	case "ESC-50":
		return ESC50(), nil
	}
	return nil, fmt.Errorf("dataset: unknown preset %q", name)
}
