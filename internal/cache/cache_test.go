package cache

import (
	"math"
	"testing"
	"testing/quick"

	"coca/internal/vecmath"
	"coca/internal/xrand"
)

func unit(parts ...uint64) []float32 {
	v := xrand.NormalVector(xrand.New(parts...), 16)
	vecmath.Normalize(v)
	return v
}

func layerOf(site int, classes []int, entries [][]float32) Layer {
	return Layer{Site: site, Classes: classes, Entries: entries}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Alpha: 0.5, Theta: 0.01}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{Alpha: -0.1, Theta: 0}, {Alpha: 1.5, Theta: 0}, {Alpha: 0.5, Theta: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
}

func TestNewLocalSortsAndValidates(t *testing.T) {
	a := unit(1)
	l, err := NewLocal([]Layer{
		layerOf(7, []int{0}, [][]float32{a}),
		layerOf(2, []int{0}, [][]float32{a}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sites := l.Sites(); sites[0] != 2 || sites[1] != 7 {
		t.Fatalf("sites = %v, want sorted", sites)
	}
	if _, err := NewLocal([]Layer{layerOf(1, []int{0, 1}, [][]float32{a})}); err == nil {
		t.Fatal("ragged layer must be rejected")
	}
	if _, err := NewLocal([]Layer{
		layerOf(3, []int{0}, [][]float32{a}),
		layerOf(3, []int{1}, [][]float32{a}),
	}); err == nil {
		t.Fatal("duplicate site must be rejected")
	}
}

func TestLayerAtAndNumEntries(t *testing.T) {
	a, b := unit(1), unit(2)
	l, err := NewLocal([]Layer{
		layerOf(4, []int{0, 1}, [][]float32{a, b}),
		layerOf(9, []int{0}, [][]float32{a}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumEntries() != 3 {
		t.Fatalf("NumEntries = %d", l.NumEntries())
	}
	if got := l.LayerAt(9); got == nil || got.Len() != 1 {
		t.Fatalf("LayerAt(9) = %+v", got)
	}
	if l.LayerAt(5) != nil {
		t.Fatal("LayerAt(5) should be nil")
	}
	if Empty().NumEntries() != 0 {
		t.Fatal("Empty cache has entries")
	}
}

func TestProbeHitOnClearWinner(t *testing.T) {
	a, b := unit(10), unit(11)
	layer := layerOf(0, []int{3, 8}, [][]float32{a, b})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.05})
	// Probe with a vector close to entry a but with positive cosine to b
	// as well (Eq. 2 needs a positive runner-up).
	v := vecmath.WeightedSum(1, a, 0.3, b)
	vecmath.Normalize(v)
	res := lk.Probe(&layer, v)
	if !res.Hit || res.Class != 3 {
		t.Fatalf("expected hit on class 3, got %+v", res)
	}
	if res.Entries != 2 {
		t.Fatalf("Entries = %d", res.Entries)
	}
	if res.Score <= 0.05 {
		t.Fatalf("score %v should exceed theta", res.Score)
	}
}

func TestProbeMissWhenAmbiguous(t *testing.T) {
	a, b := unit(10), unit(11)
	layer := layerOf(0, []int{3, 8}, [][]float32{a, b})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.05})
	// Equidistant vector: discriminative score ~0.
	v := vecmath.WeightedSum(1, a, 1, b)
	vecmath.Normalize(v)
	res := lk.Probe(&layer, v)
	if res.Hit {
		t.Fatalf("ambiguous vector must miss, got %+v", res)
	}
	if res.Score > 0.05 {
		t.Fatalf("ambiguous score = %v", res.Score)
	}
}

func TestProbeSingleClassNeverHits(t *testing.T) {
	a := unit(1)
	layer := layerOf(0, []int{5}, [][]float32{a})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.0})
	if res := lk.Probe(&layer, a); res.Hit {
		t.Fatal("single cached class cannot clear Eq. 2")
	}
}

func TestProbeEmptyLayer(t *testing.T) {
	layer := layerOf(0, nil, nil)
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.01})
	res := lk.Probe(&layer, unit(1))
	if res.Hit || res.Entries != 0 {
		t.Fatalf("empty layer probe = %+v", res)
	}
}

func TestAccumulationAcrossLayers(t *testing.T) {
	// Eq. 1: A2 = C2 + alpha*C1. Verify against a hand computation.
	dim := 4
	e1 := []float32{1, 0, 0, 0}
	e2 := []float32{0, 1, 0, 0}
	layerA := layerOf(0, []int{0, 1}, [][]float32{e1, e2})
	layerB := layerOf(1, []int{0, 1}, [][]float32{e1, e2})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 1e9}) // never hit; inspect state
	v := make([]float32, dim)
	v[0], v[1] = 0.8, 0.6 // unit: cos to e1 = 0.8, e2 = 0.6
	lk.Probe(&layerA, v)
	lk.Probe(&layerB, v)
	acc := lk.Accumulated()
	if math.Abs(acc[0]-(0.8+0.5*0.8)) > 1e-6 {
		t.Fatalf("acc[0] = %v, want 1.2", acc[0])
	}
	if math.Abs(acc[1]-(0.6+0.5*0.6)) > 1e-6 {
		t.Fatalf("acc[1] = %v, want 0.9", acc[1])
	}
}

func TestAccumulationStabilizesDecision(t *testing.T) {
	// A vector that is marginally closer to class 0 at every layer should
	// hit after enough layers even if a single layer's score is below
	// theta — accumulated scores preserve the consistent small gap while
	// Eq. 2's ratio stays roughly constant, so this checks the gap does
	// not vanish.
	e0, e1 := unit(20), unit(21)
	theta := 0.02
	lk := NewLookup(Config{Alpha: 0.5, Theta: theta})
	v := vecmath.WeightedSum(1, e0, 0.92, e1)
	vecmath.Normalize(v)
	layer := layerOf(0, []int{0, 1}, [][]float32{e0, e1})
	res := lk.Probe(&layer, v)
	for s := 1; s < 6 && !res.Hit; s++ {
		l := layerOf(s, []int{0, 1}, [][]float32{e0, e1})
		res = lk.Probe(&l, v)
	}
	if !res.Hit || res.Class != 0 {
		t.Fatalf("consistent small-gap vector should eventually hit class 0: %+v", res)
	}
}

func TestResetClearsState(t *testing.T) {
	e0, e1 := unit(30), unit(31)
	layer := layerOf(0, []int{0, 1}, [][]float32{e0, e1})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.05})
	lk.Probe(&layer, e0)
	lk.Reset()
	if len(lk.Accumulated()) != 0 {
		t.Fatal("Reset must clear accumulated scores")
	}
}

func TestNewLookupPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLookup(Config{Alpha: 2, Theta: 0})
}

func TestNegativeRunnerUpIsMiss(t *testing.T) {
	e0 := []float32{1, 0}
	e1 := []float32{0, 1}
	layer := layerOf(0, []int{0, 1}, [][]float32{e0, e1})
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.01})
	// cos to e0 positive, cos to e1 negative => ratio undefined => miss.
	res := lk.Probe(&layer, []float32{0.9, -0.4})
	if res.Hit {
		t.Fatal("negative runner-up must not hit")
	}
}

func TestPropertyHitImpliesScoreAboveTheta(t *testing.T) {
	f := func(seed uint64, thetaRaw uint8) bool {
		theta := float64(thetaRaw) / 512.0
		r := xrand.New(seed)
		n := 2 + r.IntN(8)
		classes := make([]int, n)
		entries := make([][]float32, n)
		for i := range classes {
			classes[i] = i
			entries[i] = unit(seed, uint64(i))
		}
		layer := layerOf(0, classes, entries)
		lk := NewLookup(Config{Alpha: 0.5, Theta: theta})
		v := unit(seed, 999)
		res := lk.Probe(&layer, v)
		if res.Hit && res.Score <= theta {
			return false
		}
		// The winning class must carry the max accumulated score.
		if res.Hit {
			acc := lk.Accumulated()
			for _, a := range acc {
				if a > acc[res.Class] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProbe50Entries(b *testing.B) {
	classes := make([]int, 50)
	entries := make([][]float32, 50)
	for i := range classes {
		classes[i] = i
		entries[i] = unit(uint64(i))
	}
	layer := layerOf(0, classes, entries)
	lk := NewLookup(Config{Alpha: 0.5, Theta: 0.02})
	v := unit(777)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk.Reset()
		lk.Probe(&layer, v)
	}
}
