// Package cache implements the client-side class-based semantic cache of
// SMTM/CoCa (paper §II-3).
//
// A local cache holds, for each *activated* cache layer, one unit semantic
// entry per hot-spot class. During inference the model probes activated
// layers in depth order: at layer j it computes the cosine similarity
// C(i,j) between the sample's semantic vector and every entry i, folds it
// into the cross-layer accumulated similarity
//
//	A(i,j) = C(i,j) + α·A(i,j-1)            (Eq. 1)
//
// and hits when the discriminative score between the two highest
// accumulated classes a, b
//
//	D(j) = (A(a,j) − A(b,j)) / A(b,j)       (Eq. 2)
//
// exceeds the threshold Θ, returning class a and terminating inference.
package cache

import (
	"fmt"
	"math"
	"sort"

	"coca/internal/telemetry"
	"coca/internal/vecmath"
)

// recordProbe feeds the live per-site hit/miss series. One atomic add per
// probe against a preallocated slot — the probe paths stay 0 allocs/op.
// Empty layers short-circuit before scoring and are not counted.
func recordProbe(site int, hit bool) {
	if hit {
		telemetry.CacheProbeHits.Inc(site)
	} else {
		telemetry.CacheProbeMisses.Inc(site)
	}
}

// DefaultAlpha is the paper's default cross-layer decay coefficient.
const DefaultAlpha = 0.5

// Config are the lookup parameters.
type Config struct {
	// Alpha is the Eq. 1 decay coefficient for previous layers' scores.
	Alpha float64
	// Theta is the Eq. 2 hit threshold.
	Theta float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("cache: Alpha %v outside [0,1]", c.Alpha)
	}
	if c.Theta < 0 {
		return fmt.Errorf("cache: Theta %v < 0", c.Theta)
	}
	return nil
}

// Layer is the cache content at one activated cache site.
type Layer struct {
	// Site is the cache-layer index in the model (column of the global
	// table).
	Site int
	// Classes[i] is the class of entry i (row ids).
	Classes []int
	// Entries[i] is the unit semantic vector cached for Classes[i].
	Entries [][]float32

	// Wide[i] and Norm2[i] are entry i's widened float64 mirror and
	// squared norm — probe staging computed once when the entry is
	// published (global-table merge, allocation apply, or Stage) and then
	// shared read-only by every probe, batch and round. Layers built from
	// the coordinator's allocation path arrive pre-staged with mirrors
	// borrowed from the immutable-once-published global-table entries;
	// Stage fills the staging for layers assembled by hand.
	Wide  [][]float64
	Norm2 []float64

	// snorm[i] is math.Sqrt(Norm2[i]), the second half of each entry's
	// cosine staging (computed by Stage; see vecmath.cosineFromSqrts).
	snorm []float64
	// maxCls caches the largest class id (valid when staged is set), so
	// probes size their accumulator without an O(n) scan per sample.
	maxCls int
	staged bool
}

// Len returns the number of entries at this layer.
func (l *Layer) Len() int { return len(l.Classes) }

// Staged reports whether the layer carries probe staging.
func (l *Layer) Staged() bool { return l.staged }

// MaxClass returns the largest class id cached at the layer (-1 when
// empty): the staged constant when available, an O(n) scan otherwise.
func (l *Layer) MaxClass() int {
	if l.staged {
		return l.maxCls
	}
	return l.maxClass()
}

// Stage computes the layer's probe staging — widened entry mirrors,
// squared norms and the max class id — unless already present, and marks
// the layer staged. Entry mirrors handed in by the allocation path (Wide
// and Norm2 covering every entry) are kept: they were computed when the
// entries were published and widening is exact, so recomputing could only
// reproduce them. Stage must complete before a layer is probed
// concurrently; staged layers are read-only thereafter.
func (l *Layer) Stage() {
	if l.staged {
		return
	}
	if len(l.Wide) != len(l.Entries) || len(l.Norm2) != len(l.Entries) {
		l.Wide, l.Norm2 = vecmath.WidenRows(l.Entries)
	}
	l.snorm = make([]float64, len(l.Norm2))
	vecmath.SqrtNorms(l.Norm2, l.snorm)
	l.maxCls = l.maxClass()
	l.staged = true
}

// Local is a client's allocated cache: a sparse sub-table of the global
// cache, stored as activated layers in ascending site order.
type Local struct {
	layers []Layer
}

// NewLocal assembles a local cache from layers, sorting them by site and
// rejecting duplicates or ragged entry sets.
func NewLocal(layers []Layer) (*Local, error) {
	ls := make([]Layer, len(layers))
	copy(ls, layers)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Site < ls[j].Site })
	for i := range ls {
		if len(ls[i].Classes) != len(ls[i].Entries) {
			return nil, fmt.Errorf("cache: layer site %d has %d classes but %d entries",
				ls[i].Site, len(ls[i].Classes), len(ls[i].Entries))
		}
		if i > 0 && ls[i].Site == ls[i-1].Site {
			return nil, fmt.Errorf("cache: duplicate layer site %d", ls[i].Site)
		}
		// A local cache is probed on the hot path: guarantee staging at
		// construction (free for pre-staged allocation layers).
		ls[i].Stage()
	}
	return &Local{layers: ls}, nil
}

// Empty returns an allocated cache with no layers (all lookups skip).
func Empty() *Local { return &Local{} }

// Layers returns the activated layers in ascending site order. The slice
// is shared; callers must not mutate it.
func (c *Local) Layers() []Layer { return c.layers }

// LayerAt returns the layer at the given model site, or nil if that site
// is not activated.
func (c *Local) LayerAt(site int) *Layer {
	for i := range c.layers {
		if c.layers[i].Site == site {
			return &c.layers[i]
		}
		if c.layers[i].Site > site {
			break
		}
	}
	return nil
}

// NumEntries returns the total entry count across all layers — the cache
// size in entry units (all entries share one dimensionality, so the
// paper's per-entry sizes m(i,j) are uniform here).
func (c *Local) NumEntries() int {
	n := 0
	for i := range c.layers {
		n += c.layers[i].Len()
	}
	return n
}

// Sites returns the activated site indices in ascending order.
func (c *Local) Sites() []int {
	out := make([]int, len(c.layers))
	for i := range c.layers {
		out[i] = c.layers[i].Site
	}
	return out
}

// Result is the outcome of probing one cache layer.
type Result struct {
	// Hit reports whether the discriminative score cleared Theta.
	Hit bool
	// Class is the winning class on a hit (undefined otherwise).
	Class int
	// Score is the discriminative score D(j) of Eq. 2; 0 when fewer than
	// two classes have accumulated scores.
	Score float64
	// Entries is the number of entries compared (for lookup-cost
	// accounting).
	Entries int
	// LayerClass is the top class by this layer's raw cosines alone
	// (no accumulation) — the per-site evidence, used to select which
	// sites' vectors are worth uploading for global updates.
	LayerClass int
}

// Lookup carries the cross-layer accumulated similarities of one inference
// (Eq. 1 state). It must be Reset between samples; it is not safe for
// concurrent use. The steady-state Probe path is allocation-free: the
// per-class accumulator is an epoch-stamped slice that grows once to the
// highest class id and is then reused across samples.
type Lookup struct {
	cfg     Config
	acc     []float64 // by class; valid iff stamp[class] == epoch
	stamp   []uint64
	epoch   uint64
	touched []int // classes accumulated since Reset, in first-touch order

	// vec64 and scores are the staged-probe scratch: the widened query and
	// its per-entry cosine scores, grown once to the high-water shape.
	vec64  []float64
	scores []float32
}

// NewLookup returns a lookup context. It panics on invalid configuration:
// configurations are produced by code, not user input.
func NewLookup(cfg Config) *Lookup {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Lookup{cfg: cfg, epoch: 1}
}

// Reset clears accumulated state for a new sample.
func (l *Lookup) Reset() {
	l.epoch++
	l.touched = l.touched[:0]
}

// Config returns the lookup parameters.
func (l *Lookup) Config() Config { return l.cfg }

// grow ensures the accumulator covers class ids up to maxClass.
func (l *Lookup) grow(maxClass int) {
	if maxClass < len(l.acc) {
		return
	}
	acc := make([]float64, maxClass+1)
	stamp := make([]uint64, maxClass+1)
	copy(acc, l.acc)
	copy(stamp, l.stamp)
	l.acc, l.stamp = acc, stamp
}

// fold applies one entry's similarity score to the Eq. 1 accumulator.
func (l *Lookup) fold(class int, score float64) {
	prev := 0.0
	if l.stamp[class] == l.epoch {
		prev = l.acc[class]
	} else {
		l.stamp[class] = l.epoch
		l.touched = append(l.touched, class)
	}
	l.acc[class] = score + l.cfg.Alpha*prev
}

// finish computes the Eq. 2 decision over the accumulated classes.
func (l *Lookup) finish(entries, rawBestClass int) Result {
	res := Result{Entries: entries, LayerClass: rawBestClass}
	if len(l.touched) < 2 {
		// A single cached class can never clear Eq. 2; report a miss
		// with zero score.
		return res
	}
	bestClass := -1
	best, second := -1e18, -1e18
	for _, class := range l.touched {
		a := l.acc[class]
		switch {
		case a > best:
			second = best
			best, bestClass = a, class
		case a > second:
			second = a
		}
	}
	if second <= 0 {
		// Degenerate accumulations (non-positive runner-up) cannot be
		// scored by Eq. 2's ratio; treat as a miss.
		return res
	}
	res.Score = (best - second) / second
	if res.Score > l.cfg.Theta {
		res.Hit = true
		res.Class = bestClass
	}
	return res
}

// maxClass returns the largest class id cached at the layer.
func (layer *Layer) maxClass() int {
	m := -1
	for _, c := range layer.Classes {
		if c > m {
			m = c
		}
	}
	return m
}

// Probe runs the Eq. 1 / Eq. 2 update for one activated layer against the
// sample's semantic vector at that layer. Staged layers (every layer a
// client receives through the allocation path) score through the widened
// row kernel — the query is widened once and the entries' publish-time
// mirrors and norms are reused, instead of Cosine re-deriving both norms
// per pair; results are bitwise identical either way. Steady-state calls
// are allocation-free.
func (l *Lookup) Probe(layer *Layer, vec []float32) Result {
	n := layer.Len()
	if n == 0 {
		return Result{LayerClass: -1}
	}
	if layer.staged {
		// Staged entries are uniform (WidenRows enforces it); keep the
		// unstaged path's failure mode for mismatched queries instead of
		// silently scoring a truncated dot.
		if dim := len(layer.Entries[0]); len(vec) != dim {
			panic(fmt.Sprintf("cache: Probe query length %d != entry dim %d", len(vec), dim))
		}
		if cap(l.vec64) < len(vec) {
			l.vec64 = make([]float64, len(vec))
		}
		if cap(l.scores) < n {
			l.scores = make([]float32, n)
		}
		vec64 := l.vec64[:len(vec)]
		sqrtVn := math.Sqrt(vecmath.WidenVec(vec, vec64))
		scores := l.scores[:n]
		vecmath.CosinesWidenedRows(vec64, sqrtVn, layer.Wide, layer.snorm, scores)
		return l.probeScored(layer, scores, layer.maxCls)
	}
	l.grow(layer.maxClass())
	rawBest, rawBestClass := -1e18, -1
	for i, class := range layer.Classes {
		c := float64(vecmath.Cosine(vec, layer.Entries[i]))
		if c > rawBest {
			rawBest, rawBestClass = c, class
		}
		l.fold(class, c)
	}
	res := l.finish(n, rawBestClass)
	recordProbe(layer.Site, res.Hit)
	return res
}

// probeScored folds one layer's precomputed per-entry cosine scores —
// scores[i] = Cosine(vec, layer.Entries[i]) — into the accumulator and
// returns the same Result Probe would. maxClass is the layer's largest
// class id, computed once per (layer, batch) by BatchProbe.
func (l *Lookup) probeScored(layer *Layer, scores []float32, maxClass int) Result {
	n := layer.Len()
	if n == 0 {
		return Result{LayerClass: -1}
	}
	l.grow(maxClass)
	rawBest, rawBestClass := -1e18, -1
	for i, class := range layer.Classes {
		c := float64(scores[i])
		if c > rawBest {
			rawBest, rawBestClass = c, class
		}
		l.fold(class, c)
	}
	res := l.finish(n, rawBestClass)
	recordProbe(layer.Site, res.Hit)
	return res
}

// Accumulated returns a copy of the current per-class accumulated scores
// (diagnostic; used by tests and the motivation experiments).
func (l *Lookup) Accumulated() map[int]float64 {
	out := make(map[int]float64, len(l.touched))
	for _, class := range l.touched {
		out[class] = l.acc[class]
	}
	return out
}

// BatchProbe probes one layer for a whole batch of samples at once,
// producing exactly the Results of per-sample Probe calls while running
// the scoring as one blocked multi-query kernel: the batch's queries are
// widened once, the layer's publish-time entry staging (widened mirrors
// and squared norms, computed at merge/publish and shared read-only) is
// borrowed instead of re-widening the layer per (layer, batch), and
// vecmath.CosinesBatchWidenedRows streams the entry rows through cache
// once per query tile instead of once per sample. Unstaged layers are
// staged into batch-owned scratch first. The scratch buffers are owned by
// the BatchProbe and reused; it is not safe for concurrent use.
type BatchProbe struct {
	wide   []float64   // fallback staging backing for unstaged layers
	rows   [][]float64 // row views over wide (fallback) — reused
	norm2  []float64   // fallback squared norms
	snorm  []float64   // fallback sqrt norms
	qback  []float64   // widened-query backing, all samples of the batch
	qrows  [][]float64 // row views over qback
	qsnorm []float64   // the queries' sqrt norms
	scores []float32   // batch × entries score matrix, stride = entries
}

// stage returns the layer's entry staging, borrowing the publish-time
// mirrors when present and otherwise widening into batch-owned scratch.
func (bp *BatchProbe) stage(layer *Layer, n, dim int) (rows [][]float64, snorm []float64) {
	if layer.staged {
		return layer.Wide, layer.snorm
	}
	if cap(bp.wide) < n*dim {
		bp.wide = make([]float64, n*dim)
	}
	// norm2/snorm scale with n alone, which can outgrow a previous
	// layer's count even while n*dim still fits the wide backing.
	if cap(bp.norm2) < n {
		bp.norm2 = make([]float64, n)
		bp.snorm = make([]float64, n)
	}
	wide := bp.wide[:n*dim]
	norm2 := bp.norm2[:n]
	snorm = bp.snorm[:n]
	vecmath.Widen64(layer.Entries, dim, wide, norm2)
	vecmath.SqrtNorms(norm2, snorm)
	if cap(bp.rows) < n {
		bp.rows = make([][]float64, n)
	}
	rows = bp.rows[:n]
	for i := range rows {
		rows[i] = wide[i*dim : (i+1)*dim]
	}
	return rows, snorm
}

// Probe probes layer for every sample i, folding scores into lks[i] (the
// sample's Eq. 1 state) and writing Probe-identical results to out[i].
// vecs[i] is sample i's semantic vector at the layer. Steady-state calls
// are allocation-free.
func (bp *BatchProbe) Probe(layer *Layer, vecs [][]float32, lks []*Lookup, out []Result) {
	if len(lks) < len(vecs) || len(out) < len(vecs) {
		panic(fmt.Sprintf("cache: BatchProbe lks/out length %d/%d < %d", len(lks), len(out), len(vecs)))
	}
	n := layer.Len()
	if n == 0 {
		for i := range vecs {
			out[i] = Result{LayerClass: -1}
		}
		return
	}
	q := len(vecs)
	if q == 0 {
		return
	}
	dim := len(layer.Entries[0])
	rows, snorm := bp.stage(layer, n, dim)
	if cap(bp.qback) < q*dim {
		bp.qback = make([]float64, q*dim)
		bp.qrows = make([][]float64, q)
		bp.qsnorm = make([]float64, q)
	}
	if cap(bp.qrows) < q {
		bp.qrows = make([][]float64, q)
		bp.qsnorm = make([]float64, q)
	}
	qrows := bp.qrows[:q]
	qsnorm := bp.qsnorm[:q]
	for i, vec := range vecs {
		if len(vec) != dim {
			panic(fmt.Sprintf("cache: BatchProbe query %d length %d != entry dim %d", i, len(vec), dim))
		}
		row := bp.qback[i*dim : (i+1)*dim]
		qsnorm[i] = math.Sqrt(vecmath.WidenVec(vec, row))
		qrows[i] = row
	}
	if cap(bp.scores) < q*n {
		bp.scores = make([]float32, q*n)
	}
	scores := bp.scores[:q*n]
	vecmath.CosinesBatchWidenedRows(qrows, qsnorm, rows, snorm, n, scores)
	maxClass := layer.MaxClass()
	for i := range vecs {
		out[i] = lks[i].probeScored(layer, scores[i*n:(i+1)*n], maxClass)
	}
}
