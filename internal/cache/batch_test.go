package cache

import (
	"math/rand/v2"
	"testing"
)

func randLayer(r *rand.Rand, site, entries, dim, classSpread int) Layer {
	l := Layer{Site: site}
	for i := 0; i < entries; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(r.NormFloat64())
		}
		l.Classes = append(l.Classes, r.IntN(classSpread))
		l.Entries = append(l.Entries, v)
	}
	return l
}

// TestBatchProbeMatchesProbe drives the batched probe and per-sample
// probes over identical random layers and requires bitwise-equal results
// and accumulator states at every step.
func TestBatchProbeMatchesProbe(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	cfg := Config{Alpha: DefaultAlpha, Theta: 0.01}
	const batch, dim, layers = 9, 64, 5

	seq := make([]*Lookup, batch)
	bat := make([]*Lookup, batch)
	for i := range seq {
		seq[i] = NewLookup(cfg)
		bat[i] = NewLookup(cfg)
	}
	var bp BatchProbe
	out := make([]Result, batch)
	vecs := make([][]float32, batch)

	for trial := 0; trial < 20; trial++ {
		for i := range seq {
			seq[i].Reset()
			bat[i].Reset()
		}
		for li := 0; li < layers; li++ {
			layer := randLayer(r, li, 1+r.IntN(13), dim, 12)
			for i := range vecs {
				v := make([]float32, dim)
				for d := range v {
					v[d] = float32(r.NormFloat64())
				}
				vecs[i] = v
			}
			bp.Probe(&layer, vecs, bat, out)
			for i := range vecs {
				want := seq[i].Probe(&layer, vecs[i])
				if want != out[i] {
					t.Fatalf("trial %d layer %d sample %d: Probe %+v != BatchProbe %+v", trial, li, i, want, out[i])
				}
			}
		}
		for i := range seq {
			sa, ba := seq[i].Accumulated(), bat[i].Accumulated()
			if len(sa) != len(ba) {
				t.Fatalf("trial %d sample %d: accumulator sizes diverged", trial, i)
			}
			for class, v := range sa {
				if ba[class] != v {
					t.Fatalf("trial %d sample %d class %d: accumulated %v != %v", trial, i, class, v, ba[class])
				}
			}
		}
	}
}

// TestProbeZeroAllocsSteadyState asserts the per-sample probe path stays
// allocation-free once the accumulator has grown to the class universe.
func TestProbeZeroAllocsSteadyState(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 5))
	lk := NewLookup(Config{Alpha: DefaultAlpha, Theta: 0.01})
	layer := randLayer(r, 0, 24, 64, 40)
	vec := make([]float32, 64)
	for d := range vec {
		vec[d] = float32(r.NormFloat64())
	}
	lk.Reset()
	lk.Probe(&layer, vec) // warm: grow accumulator and touched list
	if n := testing.AllocsPerRun(200, func() {
		lk.Reset()
		lk.Probe(&layer, vec)
	}); n != 0 {
		t.Errorf("Probe allocates %v/op at steady state, want 0", n)
	}

	var bp BatchProbe
	vecs := [][]float32{vec, vec, vec, vec}
	lks := []*Lookup{lk, NewLookup(lk.Config()), NewLookup(lk.Config()), NewLookup(lk.Config())}
	out := make([]Result, len(vecs))
	bp.Probe(&layer, vecs, lks, out) // warm the batch scratch
	if n := testing.AllocsPerRun(200, func() {
		for _, l := range lks {
			l.Reset()
		}
		bp.Probe(&layer, vecs, lks, out)
	}); n != 0 {
		t.Errorf("BatchProbe allocates %v/op at steady state, want 0", n)
	}
}
