package cache

import (
	"math/rand/v2"
	"testing"
)

func randLayer(r *rand.Rand, site, entries, dim, classSpread int) Layer {
	l := Layer{Site: site}
	for i := 0; i < entries; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(r.NormFloat64())
		}
		l.Classes = append(l.Classes, r.IntN(classSpread))
		l.Entries = append(l.Entries, v)
	}
	return l
}

// TestBatchProbeMatchesProbe drives the batched probe and per-sample
// probes over identical random layers and requires bitwise-equal results
// and accumulator states at every step.
func TestBatchProbeMatchesProbe(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 13))
	cfg := Config{Alpha: DefaultAlpha, Theta: 0.01}
	const batch, dim, layers = 9, 64, 5

	seq := make([]*Lookup, batch)
	bat := make([]*Lookup, batch)
	for i := range seq {
		seq[i] = NewLookup(cfg)
		bat[i] = NewLookup(cfg)
	}
	var bp BatchProbe
	out := make([]Result, batch)
	vecs := make([][]float32, batch)

	for trial := 0; trial < 20; trial++ {
		for i := range seq {
			seq[i].Reset()
			bat[i].Reset()
		}
		for li := 0; li < layers; li++ {
			layer := randLayer(r, li, 1+r.IntN(13), dim, 12)
			for i := range vecs {
				v := make([]float32, dim)
				for d := range v {
					v[d] = float32(r.NormFloat64())
				}
				vecs[i] = v
			}
			bp.Probe(&layer, vecs, bat, out)
			for i := range vecs {
				want := seq[i].Probe(&layer, vecs[i])
				if want != out[i] {
					t.Fatalf("trial %d layer %d sample %d: Probe %+v != BatchProbe %+v", trial, li, i, want, out[i])
				}
			}
		}
		for i := range seq {
			sa, ba := seq[i].Accumulated(), bat[i].Accumulated()
			if len(sa) != len(ba) {
				t.Fatalf("trial %d sample %d: accumulator sizes diverged", trial, i)
			}
			for class, v := range sa {
				if ba[class] != v {
					t.Fatalf("trial %d sample %d class %d: accumulated %v != %v", trial, i, class, v, ba[class])
				}
			}
		}
	}
}

// TestProbeZeroAllocsSteadyState asserts the per-sample probe path stays
// allocation-free once the accumulator has grown to the class universe.
func TestProbeZeroAllocsSteadyState(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 5))
	lk := NewLookup(Config{Alpha: DefaultAlpha, Theta: 0.01})
	layer := randLayer(r, 0, 24, 64, 40)
	vec := make([]float32, 64)
	for d := range vec {
		vec[d] = float32(r.NormFloat64())
	}
	lk.Reset()
	lk.Probe(&layer, vec) // warm: grow accumulator and touched list
	if n := testing.AllocsPerRun(200, func() {
		lk.Reset()
		lk.Probe(&layer, vec)
	}); n != 0 {
		t.Errorf("Probe allocates %v/op at steady state, want 0", n)
	}

	var bp BatchProbe
	vecs := [][]float32{vec, vec, vec, vec}
	lks := []*Lookup{lk, NewLookup(lk.Config()), NewLookup(lk.Config()), NewLookup(lk.Config())}
	out := make([]Result, len(vecs))
	bp.Probe(&layer, vecs, lks, out) // warm the batch scratch
	if n := testing.AllocsPerRun(200, func() {
		for _, l := range lks {
			l.Reset()
		}
		bp.Probe(&layer, vecs, lks, out)
	}); n != 0 {
		t.Errorf("BatchProbe allocates %v/op at steady state, want 0", n)
	}
}

// TestStagedProbeMatchesUnstaged drives staged and unstaged copies of
// identical random layers through per-sample probes and requires bitwise
// equal results: the publish-time staging path (widened-row kernel over
// the layer's mirrors) must be indistinguishable from the legacy
// per-pair Cosine path, across awkward dims and entry counts.
func TestStagedProbeMatchesUnstaged(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 23))
	cfg := Config{Alpha: DefaultAlpha, Theta: 0.01}
	for _, dim := range []int{1, 3, 31, 64, 128, 130} {
		for _, entries := range []int{1, 2, 5, 12, 33} {
			plain := NewLookup(cfg)
			staged := NewLookup(cfg)
			for trial := 0; trial < 5; trial++ {
				layer := randLayer(r, 0, entries, dim, 10)
				stagedLayer := Layer{Site: layer.Site, Classes: layer.Classes, Entries: layer.Entries}
				stagedLayer.Stage()
				if !stagedLayer.Staged() || stagedLayer.MaxClass() != layer.MaxClass() {
					t.Fatalf("dim=%d n=%d: staging lost MaxClass (%d != %d)", dim, entries, stagedLayer.MaxClass(), layer.MaxClass())
				}
				plain.Reset()
				staged.Reset()
				for probe := 0; probe < 3; probe++ {
					v := make([]float32, dim)
					for d := range v {
						v[d] = float32(r.NormFloat64())
					}
					want := plain.Probe(&layer, v)
					got := staged.Probe(&stagedLayer, v)
					if want != got {
						t.Fatalf("dim=%d n=%d trial %d probe %d: unstaged %+v != staged %+v", dim, entries, trial, probe, want, got)
					}
				}
			}
		}
	}
}

// TestBatchProbeBorrowsPublishedStaging asserts the borrowed-staging
// contract of the tentpole: probing a staged (published) layer must not
// touch the batch's fallback widening scratch — the layer's own mirrors
// are used — and steady-state probes of staged layers allocate nothing.
func TestBatchProbeBorrowsPublishedStaging(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 37))
	cfg := Config{Alpha: DefaultAlpha, Theta: 0.01}
	const batch, dim = 8, 64
	layer := randLayer(r, 0, 12, dim, 10)
	layer.Stage()
	lks := make([]*Lookup, batch)
	for i := range lks {
		lks[i] = NewLookup(cfg)
	}
	vecs := make([][]float32, batch)
	for i := range vecs {
		v := make([]float32, dim)
		for d := range v {
			v[d] = float32(r.NormFloat64())
		}
		vecs[i] = v
	}
	var bp BatchProbe
	out := make([]Result, batch)
	probeAll := func() {
		for i := range lks {
			lks[i].Reset()
		}
		bp.Probe(&layer, vecs, lks, out)
	}
	probeAll() // grow query scratch to the steady shape
	if bp.wide != nil || bp.norm2 != nil {
		t.Fatalf("staged layer probe touched the fallback widening scratch")
	}
	if allocs := testing.AllocsPerRun(100, probeAll); allocs != 0 {
		t.Errorf("steady-state staged batch probe: %.1f allocs/op, want 0", allocs)
	}
}

// TestSequentialStagedProbeZeroAlloc is the per-sample counterpart: the
// staged Lookup.Probe path must be allocation-free at steady state.
func TestSequentialStagedProbeZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 43))
	layer := randLayer(r, 0, 9, 64, 10)
	layer.Stage()
	lk := NewLookup(Config{Alpha: DefaultAlpha, Theta: 0.01})
	v := make([]float32, 64)
	for d := range v {
		v[d] = float32(r.NormFloat64())
	}
	lk.Reset()
	lk.Probe(&layer, v) // grow scratch
	if allocs := testing.AllocsPerRun(100, func() {
		lk.Reset()
		lk.Probe(&layer, v)
	}); allocs != 0 {
		t.Errorf("steady-state staged probe: %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchProbeScratchReuseAcrossShapes reuses one BatchProbe across
// unstaged layers whose entry count grows while entries×dim still fits
// the previous widened backing — the regime where the per-count staging
// slices (norm2/snorm) must be resized independently of the backing.
func TestBatchProbeScratchReuseAcrossShapes(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 53))
	cfg := Config{Alpha: DefaultAlpha, Theta: 0.01}
	var bp BatchProbe
	shapes := []struct{ n, dim int }{{4, 64}, {16, 16}, {2, 128}, {13, 8}}
	for _, shape := range shapes {
		layer := randLayer(r, 0, shape.n, shape.dim, 10) // unstaged on purpose
		lks := []*Lookup{NewLookup(cfg)}
		vecs := [][]float32{make([]float32, shape.dim)}
		for d := range vecs[0] {
			vecs[0][d] = float32(r.NormFloat64())
		}
		out := make([]Result, 1)
		bp.Probe(&layer, vecs, lks, out) // must not panic or mis-slice
		lk := NewLookup(cfg)
		if want := lk.Probe(&layer, vecs[0]); want != out[0] {
			t.Fatalf("n=%d dim=%d: Probe %+v != BatchProbe %+v", shape.n, shape.dim, want, out[0])
		}
	}
}

// TestStagedProbeRejectsMismatchedQuery pins the staged path's failure
// mode to the unstaged one: a query shorter than the entry dimension
// must panic, never score a silently truncated dot.
func TestStagedProbeRejectsMismatchedQuery(t *testing.T) {
	r := rand.New(rand.NewPCG(61, 67))
	layer := randLayer(r, 0, 5, 32, 10)
	layer.Stage()
	lk := NewLookup(Config{Alpha: DefaultAlpha, Theta: 0.01})
	lk.Reset()
	short := make([]float32, 16)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("staged Probe accepted a short query")
			}
		}()
		lk.Probe(&layer, short)
	}()
	var bp BatchProbe
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BatchProbe accepted a short query")
			}
		}()
		bp.Probe(&layer, [][]float32{short}, []*Lookup{lk}, make([]Result, 1))
	}()
}
