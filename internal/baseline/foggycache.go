package baseline

import (
	"fmt"
	"math"

	"coca/internal/alsh"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/model"
	"coca/internal/semantics"
)

// FoggyCacheConfig parametrizes the FoggyCache baseline (Guo et al.,
// MobiCom'18): cross-device approximate computation reuse. Each client
// computes a feature key from a shallow prefix of the model, looks it up in
// a local A-LSH + H-kNN cache, falls back to a shared server cache on a
// local miss, and only then runs the remaining blocks. Caches are LRU.
type FoggyCacheConfig struct {
	// KeyDepthFrac places the key-extraction site at this fraction of
	// the model depth (the reuse embedding; default 0.25).
	KeyDepthFrac float64
	// K, Homogeneity and MinSimilarity configure H-kNN.
	K             int
	Homogeneity   float64
	MinSimilarity float64
	// LocalCapacity and ServerCapacity bound the two caches.
	LocalCapacity, ServerCapacity int
	// ServerRTTMs is the network round-trip added by a server lookup.
	ServerRTTMs float64
	// Seed roots the LSH hyperplanes.
	Seed uint64
}

func (c FoggyCacheConfig) withDefaults() FoggyCacheConfig {
	if c.KeyDepthFrac == 0 {
		c.KeyDepthFrac = 0.25
	}
	if c.K == 0 {
		c.K = 3
	}
	if c.Homogeneity == 0 {
		c.Homogeneity = 0.67
	}
	if c.MinSimilarity == 0 {
		c.MinSimilarity = 0.30
	}
	if c.LocalCapacity == 0 {
		c.LocalCapacity = 400
	}
	if c.ServerCapacity == 0 {
		c.ServerCapacity = 4000
	}
	if c.ServerRTTMs == 0 {
		c.ServerRTTMs = 2.0
	}
	if c.Seed == 0 {
		c.Seed = 0xF066
	}
	return c
}

// FoggyServer is the shared server-side cache all FoggyCache clients fall
// back to — the cross-client reuse the system is named for.
type FoggyServer struct {
	index *alsh.Index
}

// NewFoggyServer builds the shared cache.
func NewFoggyServer(cfg FoggyCacheConfig) *FoggyServer {
	cfg = cfg.withDefaults()
	return &FoggyServer{index: alsh.New(alsh.Config{
		Dim: model.Dim, Bits: 12, Capacity: cfg.ServerCapacity,
		K: cfg.K, Homogeneity: cfg.Homogeneity, MinSimilarity: cfg.MinSimilarity,
		Seed: cfg.Seed ^ 0x5EE5,
	})}
}

// FoggyCache is one client of the FoggyCache system.
type FoggyCache struct {
	cfg     FoggyCacheConfig
	space   *semantics.Space
	env     *semantics.Env
	keySite int
	local   *alsh.Index
	server  *FoggyServer
}

// NewFoggyCache builds a client attached to the shared server cache.
// env may be nil.
func NewFoggyCache(space *semantics.Space, env *semantics.Env, server *FoggyServer, cfg FoggyCacheConfig) (*FoggyCache, error) {
	cfg = cfg.withDefaults()
	if server == nil {
		return nil, fmt.Errorf("baseline: FoggyCache needs a shared server cache")
	}
	if cfg.KeyDepthFrac <= 0 || cfg.KeyDepthFrac >= 1 {
		return nil, fmt.Errorf("baseline: FoggyCache key depth %v outside (0,1)", cfg.KeyDepthFrac)
	}
	site := int(math.Round(cfg.KeyDepthFrac * float64(space.Arch.NumLayers)))
	if site < 0 {
		site = 0
	}
	if site >= space.Arch.NumLayers {
		site = space.Arch.NumLayers - 1
	}
	return &FoggyCache{
		cfg:     cfg,
		space:   space,
		env:     env,
		keySite: site,
		local: alsh.New(alsh.Config{
			Dim: model.Dim, Bits: 10, Capacity: cfg.LocalCapacity,
			K: cfg.K, Homogeneity: cfg.Homogeneity, MinSimilarity: cfg.MinSimilarity,
			Seed: cfg.Seed,
		}),
		server: server,
	}, nil
}

// KeySite returns the key-extraction site (diagnostics).
func (f *FoggyCache) KeySite() int { return f.keySite }

// Infer implements engine.Engine: compute the key prefix, try the local
// cache, then the server cache, then fall back to the remaining blocks,
// inserting the new pair into both caches.
func (f *FoggyCache) Infer(smp dataset.Sample) engine.Result {
	arch := f.space.Arch
	latency := arch.PrefixLatencyMs(f.keySite)
	var lookupMs float64
	// Keys are normalized features with the class-agnostic component
	// removed — instance matching on raw features would be dominated by
	// the shared component and match everything with everything.
	key := f.space.CenteredVector(smp, f.keySite, f.env)

	charge := func(candidates int) {
		// Candidate filtering is the point of A-LSH: only the probed
		// buckets' entries are compared.
		cost := arch.LookupCostMs(candidates)
		latency += cost
		lookupMs += cost
	}

	if res, err := f.local.Query(key); err == nil {
		charge(res.Candidates)
		if res.Hit {
			return engine.Result{
				Pred: res.Label, LatencyMs: latency, LookupMs: lookupMs,
				Hit: true, HitLayer: f.keySite,
			}
		}
	}
	latency += f.cfg.ServerRTTMs
	if res, err := f.server.index.Query(key); err == nil {
		charge(res.Candidates)
		if res.Hit {
			// Cross-client reuse: remember the match locally too.
			_ = f.local.Add(key, res.Label)
			return engine.Result{
				Pred: res.Label, LatencyMs: latency, LookupMs: lookupMs,
				Hit: true, HitLayer: f.keySite,
			}
		}
	}
	// Full inference for the remaining blocks.
	latency += arch.RemainingLatencyMs(f.keySite)
	pred := f.space.Predict(smp, f.env)
	_ = f.local.Add(key, pred.Class)
	_ = f.server.index.Add(key, pred.Class)
	return engine.Result{Pred: pred.Class, LatencyMs: latency, LookupMs: lookupMs, HitLayer: -1}
}

var _ engine.Engine = (*FoggyCache)(nil)
