package baseline

import (
	"testing"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/gtable"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/semantics"
	"coca/internal/stream"
)

func testSpace() *semantics.Space {
	return semantics.NewSpace(dataset.ESC50().Subset(10), model.VGG16BN())
}

var initTableCache = map[string]*gtable.Table{}

func testInitTable(t testing.TB, space *semantics.Space) *gtable.Table {
	t.Helper()
	key := space.DS.Name + space.Arch.Name
	if tbl, ok := initTableCache[key]; ok {
		return tbl
	}
	tbl := core.InitialTable(space, 16, 3)
	initTableCache[key] = tbl
	return tbl
}

func testGen(t testing.TB, seed uint64) *stream.Generator {
	t.Helper()
	part, err := stream.NewPartition(stream.Config{
		Dataset:         dataset.ESC50().Subset(10),
		NumClients:      1,
		SceneMeanFrames: 20,
		WorkingSetSize:  6,
		WorkingSetChurn: 0.05,
		Seed:            seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return part.Client(0)
}

func runEngine(t testing.TB, eng engine.Engine, frames int, seed uint64) metrics.Summary {
	t.Helper()
	gen := testGen(t, seed)
	var acc metrics.Accumulator
	if h, ok := eng.(engine.RoundHooks); ok {
		if err := h.BeginRound(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < frames; i++ {
		smp := gen.Next()
		res := eng.Infer(smp)
		acc.Record(metrics.Obs{
			LatencyMs: res.LatencyMs, LookupMs: res.LookupMs,
			Correct: res.Pred == smp.Class, Hit: res.Hit, HitLayer: res.HitLayer,
		})
	}
	if h, ok := eng.(engine.RoundHooks); ok {
		if err := h.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	return acc.Summary()
}

func TestEdgeOnly(t *testing.T) {
	space := testSpace()
	s := runEngine(t, NewEdgeOnly(space, nil), 300, 1)
	if s.HitRatio != 0 {
		t.Fatal("EdgeOnly cannot hit")
	}
	if diff := s.AvgLatencyMs - space.Arch.TotalLatencyMs(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EdgeOnly latency %v != %v", s.AvgLatencyMs, space.Arch.TotalLatencyMs())
	}
	if s.Accuracy < space.DS.BaseAccuracy-0.08 {
		t.Fatalf("EdgeOnly accuracy %v far below base", s.Accuracy)
	}
}

func TestLearnedCacheExitsEarly(t *testing.T) {
	space := testSpace()
	lc, err := NewLearnedCache(space, nil, LearnedCacheConfig{NumExits: 4, RetrainCostMs: 100, RetrainEveryFrames: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(lc.Exits()) != 4 {
		t.Fatalf("exits = %v", lc.Exits())
	}
	s := runEngine(t, lc, 400, 1)
	if s.HitRatio == 0 {
		t.Fatal("LearnedCache never exited early")
	}
	if s.AvgLatencyMs >= space.Arch.TotalLatencyMs() {
		t.Fatalf("LearnedCache latency %v not below edge-only", s.AvgLatencyMs)
	}
	if s.Accuracy < 0.6 {
		t.Fatalf("LearnedCache accuracy collapsed: %v", s.Accuracy)
	}
}

func TestLearnedCacheRetrainOverheadCharged(t *testing.T) {
	space := testSpace()
	cheap, err := NewLearnedCache(space, nil, LearnedCacheConfig{NumExits: 4, RetrainCostMs: 1, RetrainEveryFrames: 300})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := NewLearnedCache(space, nil, LearnedCacheConfig{NumExits: 4, RetrainCostMs: 3000, RetrainEveryFrames: 300})
	if err != nil {
		t.Fatal(err)
	}
	a := runEngine(t, cheap, 200, 1)
	b := runEngine(t, costly, 200, 1)
	if b.AvgLatencyMs <= a.AvgLatencyMs {
		t.Fatalf("retraining cost not charged: %v vs %v", b.AvgLatencyMs, a.AvgLatencyMs)
	}
}

func TestLearnedCacheValidation(t *testing.T) {
	if _, err := NewLearnedCache(testSpace(), nil, LearnedCacheConfig{NumExits: 99}); err == nil {
		t.Fatal("too many exits accepted")
	}
}

func TestSMTMHitsAndAccelerates(t *testing.T) {
	space := testSpace()
	s, err := NewSMTM(space, nil, SMTMConfig{
		Theta: 0.035, NumLayers: 4, Budget: 40,
		InitTable: testInitTable(t, space),
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := runEngine(t, s, 400, 1)
	if sum.HitRatio < 0.2 {
		t.Fatalf("SMTM hit ratio %v too low", sum.HitRatio)
	}
	if sum.AvgLatencyMs >= space.Arch.TotalLatencyMs() {
		t.Fatalf("SMTM latency %v not below edge-only", sum.AvgLatencyMs)
	}
	if sum.Accuracy < 0.55 {
		t.Fatalf("SMTM accuracy collapsed: %v", sum.Accuracy)
	}
}

func TestSMTMFixedSites(t *testing.T) {
	space := testSpace()
	s, err := NewSMTM(space, nil, SMTMConfig{
		Theta: 0.035, NumLayers: 3, Budget: 30,
		InitTable: testInitTable(t, space),
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := s.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %v", sites)
	}
	if err := s.BeginRound(); err != nil {
		t.Fatal(err)
	}
	for i, site := range s.local.Sites() {
		if site != sites[i] {
			t.Fatalf("loaded sites %v != fixed %v", s.local.Sites(), sites)
		}
	}
}

func TestSMTMValidation(t *testing.T) {
	space := testSpace()
	if _, err := NewSMTM(space, nil, SMTMConfig{Theta: 0.03, NumLayers: 4, Budget: 40}); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := NewSMTM(space, nil, SMTMConfig{Theta: 0.03, NumLayers: 4, Budget: 2, InitTable: testInitTable(t, space)}); err == nil {
		t.Fatal("budget below layers accepted")
	}
	if _, err := NewSMTM(space, nil, SMTMConfig{Theta: 0.03, NumLayers: 99, Budget: 990, InitTable: testInitTable(t, space)}); err == nil {
		t.Fatal("layer overflow accepted")
	}
}

func TestFoggyCacheCrossClientReuse(t *testing.T) {
	space := testSpace()
	srv := NewFoggyServer(FoggyCacheConfig{})
	c1, err := NewFoggyCache(space, nil, srv, FoggyCacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewFoggyCache(space, nil, srv, FoggyCacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Client 1 processes a stream, populating the shared cache.
	_ = runEngine(t, c1, 400, 1)
	// Client 2 sees a similar stream: it should hit via the server.
	s2 := runEngine(t, c2, 400, 1)
	if s2.HitRatio == 0 {
		t.Fatal("no cross-client reuse despite shared cache")
	}
	if s2.AvgLatencyMs >= space.Arch.TotalLatencyMs() {
		t.Fatalf("FoggyCache latency %v not below edge-only", s2.AvgLatencyMs)
	}
}

func TestFoggyCacheValidation(t *testing.T) {
	space := testSpace()
	if _, err := NewFoggyCache(space, nil, nil, FoggyCacheConfig{}); err == nil {
		t.Fatal("nil server accepted")
	}
	srv := NewFoggyServer(FoggyCacheConfig{})
	if _, err := NewFoggyCache(space, nil, srv, FoggyCacheConfig{KeyDepthFrac: 1.5}); err == nil {
		t.Fatal("bad key depth accepted")
	}
}

func TestPolicyCacheHitsAndEvicts(t *testing.T) {
	space := testSpace()
	for _, pol := range []string{"LRU", "FIFO", "RAND"} {
		pc, err := NewPolicyCache(space, nil, PolicyCacheConfig{
			Theta: 0.035, Sites: []int{0, 4, 8}, Capacity: 5,
			Policy: pol, Table: testInitTable(t, space), Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := runEngine(t, pc, 400, 1)
		if s.HitRatio == 0 {
			t.Errorf("%s: no hits", pol)
		}
		if s.AvgLatencyMs >= space.Arch.TotalLatencyMs() {
			t.Errorf("%s: latency %v not below edge-only", pol, s.AvgLatencyMs)
		}
		if pc.replacer.Len() > 5 {
			t.Errorf("%s: capacity exceeded", pol)
		}
	}
}

func TestPolicyCacheValidation(t *testing.T) {
	space := testSpace()
	tbl := testInitTable(t, space)
	if _, err := NewPolicyCache(space, nil, PolicyCacheConfig{Theta: 0.03, Sites: []int{0}, Capacity: 5, Policy: "ARC", Table: tbl}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewPolicyCache(space, nil, PolicyCacheConfig{Theta: 0.03, Capacity: 5, Policy: "LRU", Table: tbl}); err == nil {
		t.Fatal("no sites accepted")
	}
	if _, err := NewPolicyCache(space, nil, PolicyCacheConfig{Theta: 0.03, Sites: []int{0}, Capacity: 5, Policy: "LRU"}); err == nil {
		t.Fatal("missing table accepted")
	}
}

// TestBaselineOrdering checks the paper's qualitative Table II ordering on
// a shared workload: every acceleration method beats Edge-Only on latency,
// and the semantic caches beat the multi-exit baseline.
func TestBaselineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check")
	}
	space := testSpace()
	tbl := testInitTable(t, space)

	edge := runEngine(t, NewEdgeOnly(space, nil), 600, 9)
	lc, err := NewLearnedCache(space, nil, LearnedCacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lcs := runEngine(t, lc, 600, 9)
	smtm, err := NewSMTM(space, nil, SMTMConfig{Theta: 0.035, NumLayers: 4, Budget: 40, InitTable: tbl})
	if err != nil {
		t.Fatal(err)
	}
	ss := runEngine(t, smtm, 600, 9)

	if !(lcs.AvgLatencyMs < edge.AvgLatencyMs) {
		t.Errorf("LearnedCache %v not below Edge-Only %v", lcs.AvgLatencyMs, edge.AvgLatencyMs)
	}
	if !(ss.AvgLatencyMs < edge.AvgLatencyMs) {
		t.Errorf("SMTM %v not below Edge-Only %v", ss.AvgLatencyMs, edge.AvgLatencyMs)
	}
	// The full SMTM-vs-LearnedCache ordering needs the paper's workload
	// scale; the full-scale Table II run in EXPERIMENTS.md records it.
}
