package baseline

import (
	"fmt"

	"coca/internal/cache"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/gtable"
	"coca/internal/policy"
	"coca/internal/semantics"
)

// PolicyCacheConfig parametrizes the Fig. 8 comparison engines: a semantic
// cache with a fixed set of activated layers whose class entries are
// managed by a classical replacement policy (LRU / FIFO / RAND) instead of
// ACA.
type PolicyCacheConfig struct {
	// Theta and Alpha configure the lookup.
	Theta, Alpha float64
	// Sites is the fixed set of activated cache sites.
	Sites []int
	// Capacity is the maximum number of classes cached (each cached
	// class holds one entry per site, matching the paper's "entries per
	// cache layer" definition).
	Capacity int
	// Policy is "LRU", "FIFO" or "RAND".
	Policy string
	// Table supplies entry vectors (from core.InitialTable); required.
	Table *gtable.Table
	// Seed roots RAND's choices.
	Seed uint64
}

// PolicyCache is a policy-managed semantic cache engine for one client.
type PolicyCache struct {
	cfg      PolicyCacheConfig
	space    *semantics.Space
	env      *semantics.Env
	replacer policy.Replacer
	local    *cache.Local
	lookup   *cache.Lookup
	dirty    bool
}

// NewPolicyCache builds the engine. env may be nil.
func NewPolicyCache(space *semantics.Space, env *semantics.Env, cfg PolicyCacheConfig) (*PolicyCache, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("baseline: policy cache needs a table")
	}
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("baseline: policy cache needs at least one site")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = cache.DefaultAlpha
	}
	repl, err := policy.ByName(cfg.Policy, cfg.Capacity, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &PolicyCache{
		cfg:      cfg,
		space:    space,
		env:      env,
		replacer: repl,
		local:    cache.Empty(),
		lookup:   cache.NewLookup(cache.Config{Alpha: cfg.Alpha, Theta: cfg.Theta}),
		dirty:    true,
	}, nil
}

// rebuild materializes the cached class set into cache layers.
func (p *PolicyCache) rebuild() error {
	classes := p.replacer.Classes()
	layers := make([]cache.Layer, 0, len(p.cfg.Sites))
	for _, site := range p.cfg.Sites {
		cls, entries := p.cfg.Table.ExtractLayer(site, classes)
		layers = append(layers, cache.Layer{Site: site, Classes: cls, Entries: entries})
	}
	local, err := cache.NewLocal(layers)
	if err != nil {
		return err
	}
	p.local = local
	p.dirty = false
	return nil
}

// Infer implements engine.Engine: semantic lookup over the policy-managed
// class set; on a miss the predicted class is inserted per the policy.
func (p *PolicyCache) Infer(smp dataset.Sample) engine.Result {
	if p.dirty {
		if err := p.rebuild(); err != nil {
			// An unusable cache degrades to full inference.
			p.local = cache.Empty()
			p.dirty = false
		}
	}
	arch := p.space.Arch
	p.lookup.Reset()
	var latency, lookupMs float64
	res := engine.Result{Pred: -1, HitLayer: -1}
	for j := 0; j <= arch.NumLayers; j++ {
		latency += arch.BlockLatencyMs[j]
		if j == arch.NumLayers {
			break
		}
		layer := p.local.LayerAt(j)
		if layer == nil || layer.Len() == 0 {
			continue
		}
		vec := p.space.SampleVector(smp, j, p.env)
		cost := arch.LookupCostMs(layer.Len())
		latency += cost
		lookupMs += cost
		pr := p.lookup.Probe(layer, vec)
		if pr.Hit {
			res.Pred = pr.Class
			res.Hit = true
			res.HitLayer = j
			p.replacer.Touch(pr.Class)
			break
		}
	}
	if !res.Hit {
		res.Pred = p.space.Predict(smp, p.env).Class
		if _, evicted := p.replacer.Insert(res.Pred); evicted || !p.containsLoaded(res.Pred) {
			p.dirty = true
		}
	}
	res.LatencyMs = latency
	res.LookupMs = lookupMs
	return res
}

func (p *PolicyCache) containsLoaded(class int) bool {
	for _, l := range p.local.Layers() {
		for _, c := range l.Classes {
			if c == class {
				return true
			}
		}
		break // same class set on every layer
	}
	return false
}

var _ engine.Engine = (*PolicyCache)(nil)
