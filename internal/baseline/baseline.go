// Package baseline implements the comparison systems of the paper's
// evaluation (§VI-B): Edge-Only, LearnedCache, FoggyCache and SMTM, plus
// the policy-managed semantic cache used by the Fig. 8 replacement-policy
// comparison. All engines satisfy engine.Engine and run against the same
// simulated substrate as CoCa.
package baseline

import (
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/semantics"
)

// EdgeOnly runs the full model on every frame — the paper's reference
// configuration that every acceleration method is measured against.
type EdgeOnly struct {
	space *semantics.Space
	env   *semantics.Env
}

// NewEdgeOnly builds the baseline for one client. env may be nil.
func NewEdgeOnly(space *semantics.Space, env *semantics.Env) *EdgeOnly {
	return &EdgeOnly{space: space, env: env}
}

// Infer implements engine.Engine.
func (e *EdgeOnly) Infer(smp dataset.Sample) engine.Result {
	pred := e.space.Predict(smp, e.env)
	return engine.Result{
		Pred:      pred.Class,
		LatencyMs: e.space.Arch.TotalLatencyMs(),
		HitLayer:  -1,
	}
}

var _ engine.Engine = (*EdgeOnly)(nil)
