package baseline

import (
	"fmt"

	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/semantics"
	"coca/internal/vecmath"
)

// LearnedCacheConfig parametrizes the LearnedCache baseline
// (Balasubramanian et al., 2021): multiple intermediate exits, each with a
// small learned model that predicts whether the sample can exit early, kept
// fresh by frequent retraining whose cost degrades QoS (§II, §VI-B).
type LearnedCacheConfig struct {
	// NumExits is the number of intermediate exits, evenly spaced.
	NumExits int
	// ExitMargin is the per-exit confidence requirement: the top-2
	// cosine-margin the exit classifier needs before terminating. Zero
	// picks a per-architecture default tied to the class-separation
	// scale.
	ExitMargin float64
	// RetrainEveryFrames and RetrainCostMs model the periodic retraining
	// of exit models; the cost is amortized over the interval's frames.
	RetrainEveryFrames int
	RetrainCostMs      float64
}

func (c LearnedCacheConfig) withDefaults(space *semantics.Space) LearnedCacheConfig {
	if c.NumExits == 0 {
		c.NumExits = 4
	}
	if c.ExitMargin == 0 {
		// Require a clear within-group separation at the exit.
		c.ExitMargin = 0.9 * (1 - space.Arch.RhoSame)
	}
	if c.RetrainEveryFrames == 0 {
		c.RetrainEveryFrames = 300
	}
	if c.RetrainCostMs == 0 {
		// One retraining pass costs several full forward passes,
		// amortized across the interval.
		c.RetrainCostMs = 8 * space.Arch.TotalLatencyMs()
	}
	return c
}

// LearnedCache is the multi-exit baseline for one client.
type LearnedCache struct {
	cfg   LearnedCacheConfig
	space *semantics.Space
	env   *semantics.Env
	exits []int
	// amortized retraining cost added to every frame.
	retrainPerFrameMs float64
}

// NewLearnedCache builds the baseline. env may be nil.
func NewLearnedCache(space *semantics.Space, env *semantics.Env, cfg LearnedCacheConfig) (*LearnedCache, error) {
	cfg = cfg.withDefaults(space)
	L := space.Arch.NumLayers
	if cfg.NumExits < 1 || cfg.NumExits > L {
		return nil, fmt.Errorf("baseline: LearnedCache exits %d outside [1,%d]", cfg.NumExits, L)
	}
	lc := &LearnedCache{
		cfg:               cfg,
		space:             space,
		env:               env,
		retrainPerFrameMs: cfg.RetrainCostMs / float64(cfg.RetrainEveryFrames),
	}
	// Exits evenly spaced over the depth, biased away from layer 0 where
	// no learned exit model is useful.
	for e := 1; e <= cfg.NumExits; e++ {
		site := e * L / (cfg.NumExits + 1)
		lc.exits = append(lc.exits, site)
	}
	return lc, nil
}

// Exits returns the exit sites (diagnostics).
func (lc *LearnedCache) Exits() []int { return append([]int(nil), lc.exits...) }

// Infer implements engine.Engine: run blocks in order, consult the learned
// exit model at every exit site, and terminate when it is confident.
func (lc *LearnedCache) Infer(smp dataset.Sample) engine.Result {
	arch := lc.space.Arch
	ds := lc.space.DS
	latency := lc.retrainPerFrameMs
	var lookupMs float64
	exitIdx := 0
	for j := 0; j <= arch.NumLayers; j++ {
		latency += arch.BlockLatencyMs[j]
		if j == arch.NumLayers {
			break
		}
		if exitIdx >= len(lc.exits) || lc.exits[exitIdx] != j {
			continue
		}
		exitIdx++
		// The exit model scores the intermediate feature against every
		// class; its cost is that of a full-width cache layer.
		cost := arch.LookupCostMs(ds.NumClasses)
		latency += cost
		lookupMs += cost
		vec := lc.space.SampleVector(smp, j, lc.env)
		best, second := -2.0, -2.0
		bestClass := -1
		for c := 0; c < ds.NumClasses; c++ {
			s := float64(vecmath.Dot(vec, lc.space.Prototype(c, j)))
			switch {
			case s > best:
				second = best
				best, bestClass = s, c
			case s > second:
				second = s
			}
		}
		if best-second > lc.cfg.ExitMargin {
			return engine.Result{
				Pred:      bestClass,
				LatencyMs: latency,
				LookupMs:  lookupMs,
				Hit:       true,
				HitLayer:  j,
			}
		}
	}
	pred := lc.space.Predict(smp, lc.env)
	return engine.Result{
		Pred:      pred.Class,
		LatencyMs: latency,
		LookupMs:  lookupMs,
		HitLayer:  -1,
	}
}

var _ engine.Engine = (*LearnedCache)(nil)
