package baseline

import (
	"fmt"
	"math"
	"sort"

	"coca/internal/cache"
	"coca/internal/dataset"
	"coca/internal/engine"
	"coca/internal/gtable"
	"coca/internal/semantics"
)

// SMTMConfig parametrizes the SMTM baseline (Li et al., MM'21): a
// single-client semantic cache with class importance scored by total
// frequency and recency, a fixed set of activated cache layers, and
// client-local entry updates — no cross-client sharing (§II-2, §VI-B).
type SMTMConfig struct {
	// Theta and Alpha configure the Eq. 1/Eq. 2 lookup.
	Theta, Alpha float64
	// NumLayers is the fixed count of activated layers (evenly spaced).
	NumLayers int
	// Budget bounds the total entries, capping the hot-spot class count
	// at Budget/NumLayers.
	Budget int
	// Coverage is the hot-spot score coverage (default 0.95 as in the
	// paper).
	Coverage float64
	// RoundFrames is the refresh cadence for the hot-spot set.
	RoundFrames int
	// InitTable is the shared-dataset cache table used to seed local
	// entries (from core.InitialTable); required.
	InitTable *gtable.Table
}

// SMTM is the per-client semantic-cache baseline.
type SMTM struct {
	cfg   SMTMConfig
	space *semantics.Space
	env   *semantics.Env

	sites  []int
	table  *gtable.Table // client-local copy, locally updated
	local  *cache.Local
	lookup *cache.Lookup

	freq    []float64
	tau     []int
	support [][]float64
}

// NewSMTM builds the baseline for one client. env may be nil.
func NewSMTM(space *semantics.Space, env *semantics.Env, cfg SMTMConfig) (*SMTM, error) {
	if cfg.InitTable == nil {
		return nil, fmt.Errorf("baseline: SMTM needs an initial table")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = cache.DefaultAlpha
	}
	if cfg.NumLayers == 0 {
		cfg.NumLayers = 4
	}
	if cfg.Coverage == 0 {
		cfg.Coverage = 0.95
	}
	if cfg.RoundFrames == 0 {
		cfg.RoundFrames = 300
	}
	if cfg.Budget < cfg.NumLayers {
		return nil, fmt.Errorf("baseline: SMTM budget %d below one entry per layer (%d)", cfg.Budget, cfg.NumLayers)
	}
	L := space.Arch.NumLayers
	if cfg.NumLayers > L {
		return nil, fmt.Errorf("baseline: SMTM layers %d exceed model sites %d", cfg.NumLayers, L)
	}
	s := &SMTM{
		cfg:    cfg,
		space:  space,
		env:    env,
		table:  cfg.InitTable.Snapshot(),
		local:  cache.Empty(),
		lookup: cache.NewLookup(cache.Config{Alpha: cfg.Alpha, Theta: cfg.Theta}),
		freq:   make([]float64, space.DS.NumClasses),
		tau:    make([]int, space.DS.NumClasses),
	}
	s.support = make([][]float64, space.DS.NumClasses)
	for c := range s.support {
		s.support[c] = make([]float64, L)
		for j := range s.support[c] {
			s.support[c][j] = 64
		}
	}
	// Evenly-spaced fixed sites, starting shallow where exits pay most.
	for e := 0; e < cfg.NumLayers; e++ {
		s.sites = append(s.sites, e*L/cfg.NumLayers)
	}
	return s, nil
}

// Sites returns the fixed activated sites (diagnostics).
func (s *SMTM) Sites() []int { return append([]int(nil), s.sites...) }

// BeginRound implements engine.RoundHooks: refresh the hot-spot class set
// from local frequency/recency scores and reload entries from the local
// table.
func (s *SMTM) BeginRound() error {
	classes := s.hotSpotClasses()
	layers := make([]cache.Layer, 0, len(s.sites))
	for _, site := range s.sites {
		cls, entries := s.table.ExtractLayer(site, classes)
		layers = append(layers, cache.Layer{Site: site, Classes: cls, Entries: entries})
	}
	local, err := cache.NewLocal(layers)
	if err != nil {
		return fmt.Errorf("baseline: SMTM cache rebuild: %w", err)
	}
	s.local = local
	return nil
}

// EndRound implements engine.RoundHooks (no upload: SMTM is client-local).
func (s *SMTM) EndRound() error { return nil }

// hotSpotClasses scores classes by frequency × recency (the SMTM rule the
// paper's Eq. 10 borrows) and selects the top ones covering the configured
// score mass, capped by the entry budget.
func (s *SMTM) hotSpotClasses() []int {
	n := len(s.freq)
	scores := make([]float64, n)
	var total float64
	for i := range scores {
		scores[i] = (s.freq[i] + 1) * math.Pow(0.2, math.Floor(float64(s.tau[i])/float64(s.cfg.RoundFrames)))
		total += scores[i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	maxClasses := s.cfg.Budget / s.cfg.NumLayers
	var out []int
	var acc float64
	for _, c := range order {
		if len(out) >= maxClasses {
			break
		}
		out = append(out, c)
		acc += scores[c]
		if acc >= s.cfg.Coverage*total {
			break
		}
	}
	return out
}

// Infer implements engine.Engine.
func (s *SMTM) Infer(smp dataset.Sample) engine.Result {
	arch := s.space.Arch
	s.lookup.Reset()
	var latency, lookupMs float64
	res := engine.Result{Pred: -1, HitLayer: -1}
	for j := 0; j <= arch.NumLayers; j++ {
		latency += arch.BlockLatencyMs[j]
		if j == arch.NumLayers {
			break
		}
		layer := s.local.LayerAt(j)
		if layer == nil || layer.Len() == 0 {
			continue
		}
		vec := s.space.SampleVector(smp, j, s.env)
		cost := arch.LookupCostMs(layer.Len())
		latency += cost
		lookupMs += cost
		pr := s.lookup.Probe(layer, vec)
		if pr.Hit {
			res.Pred = pr.Class
			res.Hit = true
			res.HitLayer = j
			// Local reinforcement of the hit entry (count-weighted
			// running mean, mirroring CoCa's evidence weighting but
			// without any upload).
			s.absorb(pr.Class, j, vec)
			break
		}
	}
	if !res.Hit {
		res.Pred = s.space.Predict(smp, s.env).Class
	}
	for i := range s.tau {
		s.tau[i]++
	}
	s.tau[smp.Class] = 0
	s.freq[smp.Class]++
	res.LatencyMs = latency
	res.LookupMs = lookupMs
	return res
}

func (s *SMTM) absorb(class, site int, vec []float32) {
	sup := s.support[class][site]
	old := s.table.Get(class, site)
	if old == nil {
		_ = s.table.Set(class, site, vec)
	} else if err := s.table.Merge(class, site, vec, gtable.DefaultGamma, sup, 1); err != nil {
		return
	}
	s.support[class][site] = math.Min(sup+1, 160)
	// Refresh the loaded entry so within-round hits see the update.
	if layer := s.local.LayerAt(site); layer != nil {
		for i, c := range layer.Classes {
			if c == class {
				copy(layer.Entries[i], s.table.Get(class, site))
				break
			}
		}
	}
}

var (
	_ engine.Engine     = (*SMTM)(nil)
	_ engine.RoundHooks = (*SMTM)(nil)
)
