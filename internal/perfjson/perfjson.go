// Package perfjson defines the machine-readable performance report that
// cmd/coca-bench emits (`coca-bench -bench -json`): a versioned JSON
// schema capturing the headline reproduction metrics and the hot-path
// benchmarks of one build, written as BENCH_<date>.json. Committing these
// files gives the repository a perf trajectory — every PR's numbers are
// comparable with every other's — and Delta compares two reports the way
// EXPERIMENTS.md describes.
package perfjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SchemaVersion identifies the report layout. Bump it when fields change
// meaning; comparison tooling refuses to diff across versions.
const SchemaVersion = 1

// Benchmark is one measured benchmark.
type Benchmark struct {
	// Name identifies the benchmark (e.g. "inference-path/batch=32").
	Name string `json:"name"`
	// Iterations is the measured iteration count (b.N).
	Iterations int `json:"iterations"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocation profile per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics holds benchmark-reported extra metrics, e.g.
	// "latency-reduction-%" and "accuracy-%" for the headline run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level document.
type Report struct {
	Schema    int    `json:"schema"`
	Date      string `json:"date"` // YYYY-MM-DD
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Benchmarks are sorted by name on write for stable diffs.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Add appends a benchmark to the report.
func (r *Report) Add(b Benchmark) { r.Benchmarks = append(r.Benchmarks, b) }

// Filename returns the versioned file name for the report's date,
// BENCH_<date>.json.
func (r *Report) Filename() string {
	return fmt.Sprintf("BENCH_%s.json", r.Date)
}

// normalize sorts benchmarks and validates the report before writing.
func (r *Report) normalize() error {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if _, err := time.Parse("2006-01-02", r.Date); err != nil {
		return fmt.Errorf("perfjson: date %q not YYYY-MM-DD: %w", r.Date, err)
	}
	sort.Slice(r.Benchmarks, func(i, j int) bool {
		return r.Benchmarks[i].Name < r.Benchmarks[j].Name
	})
	return nil
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	if err := r.normalize(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report into dir under its versioned name and
// returns the path.
func (r *Report) WriteFile(dir string) (string, error) {
	if err := r.normalize(); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// Load reads a report back.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfjson: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perfjson: %s has schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// BenchDelta is one benchmark's old→new movement.
type BenchDelta struct {
	Name string
	// OldNs and NewNs are ns/op; a zero OldNs means the benchmark is new.
	OldNs, NewNs float64
	// Speedup is OldNs/NewNs (>1 is faster), 0 when not comparable.
	Speedup float64
	// OldAllocs and NewAllocs are allocs/op. Known reports only when the
	// benchmark exists in both (see Known).
	OldAllocs, NewAllocs float64
	// Known marks that the benchmark was present in the old report (a new
	// benchmark has nothing to regress against).
	Known bool
}

// ZeroAllocThreshold is the allocs/op at or below which a benchmark
// counts as "zero-alloc" for regression gating: genuinely allocation-free
// steady states measure 0, but a stray amortized warmup allocation at
// short -benchtime must not reclassify the benchmark.
const ZeroAllocThreshold = 8

// AllocRegression reports whether this delta is an allocation regression
// in a zero-alloc benchmark: the old measurement was (near) zero-alloc and
// the new one grew by more than tolerance (a fraction, e.g. 0.2 for 20%)
// plus an absolute slack of one allocation — so at 20% tolerance, 0 → 1
// from measurement noise does not fail a build, while 0 → 2 and 8 → 11
// (over 8·1.2+1 = 10.6) do.
func (d BenchDelta) AllocRegression(tolerance float64) bool {
	if !d.Known || d.OldAllocs > ZeroAllocThreshold {
		return false
	}
	return d.NewAllocs > d.OldAllocs*(1+tolerance)+1
}

// TimeRegression reports whether this delta is a wall-clock regression:
// the benchmark existed in the old report and its ns/op grew beyond
// tolerance (a fraction, e.g. 0.5 for 50%) plus an absolute slack in
// nanoseconds. The slack term keeps micro-benchmarks (whose ns/op jitters
// by scheduling noise that is a large *fraction* but a tiny *amount*)
// from tripping the gate, exactly like AllocRegression's one-allocation
// slack: with tolerance 0.5 and 100µs slack, 40µs → 55µs passes
// (+15µs < 60µs+100µs... trivially) while 1s → 1.7s fails.
func (d BenchDelta) TimeRegression(tolerance, slackNs float64) bool {
	if !d.Known || d.OldNs <= 0 {
		return false
	}
	return d.NewNs > d.OldNs*(1+tolerance)+slackNs
}

// Delta compares two reports benchmark by benchmark, returning movements
// for every benchmark present in the new report.
func Delta(old, new *Report) []BenchDelta {
	prev := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		prev[b.Name] = b
	}
	out := make([]BenchDelta, 0, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		d := BenchDelta{Name: b.Name, NewNs: b.NsPerOp, NewAllocs: b.AllocsPerOp}
		if p, ok := prev[b.Name]; ok {
			d.Known = true
			d.OldNs = p.NsPerOp
			d.OldAllocs = p.AllocsPerOp
			if b.NsPerOp > 0 {
				d.Speedup = p.NsPerOp / b.NsPerOp
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
