package perfjson

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Date:      "2026-07-25",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Benchmarks: []Benchmark{
			{Name: "inference-path/scale=ref/batch=32", Iterations: 100, NsPerOp: 40000, Metrics: map[string]float64{"speedup-vs-batch=1": 2.1}},
			{Name: "headline", Iterations: 3, NsPerOp: 1.1e9, Metrics: map[string]float64{"latency-reduction-%": 45.4}},
		},
	}
}

func TestWriteSortsAndVersions(t *testing.T) {
	var buf bytes.Buffer
	r := sample()
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", back.Schema, SchemaVersion)
	}
	if back.Benchmarks[0].Name != "headline" {
		t.Fatalf("benchmarks not sorted: first is %q", back.Benchmarks[0].Name)
	}
	if got := r.Filename(); got != "BENCH_2026-07-25.json" {
		t.Fatalf("filename %q", got)
	}
}

func TestWriteRejectsBadDate(t *testing.T) {
	r := sample()
	r.Date = "July 25"
	if err := r.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("bad date accepted")
	}
}

func TestRoundTripAndSchemaGate(t *testing.T) {
	dir := t.TempDir()
	r := sample()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, r.Filename()) {
		t.Fatalf("path %q", path)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 2 || back.Benchmarks[1].NsPerOp != 40000 {
		t.Fatalf("round trip mangled: %+v", back)
	}

	// A future-schema file must be refused, not silently misread.
	bumped := *back
	bumped.Schema = SchemaVersion + 1
	data, _ := json.Marshal(bumped)
	bad := dir + "/future.json"
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("future schema accepted")
	}
}

func TestDelta(t *testing.T) {
	old := sample()
	next := sample()
	next.Benchmarks[0].NsPerOp = 20000 // 2x faster
	next.Benchmarks = append(next.Benchmarks, Benchmark{Name: "new-bench", NsPerOp: 5})
	ds := Delta(old, next)
	if len(ds) != 3 {
		t.Fatalf("got %d deltas", len(ds))
	}
	byName := map[string]BenchDelta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["inference-path/scale=ref/batch=32"]; d.Speedup != 2 {
		t.Fatalf("speedup %v, want 2", d.Speedup)
	}
	if d := byName["new-bench"]; d.OldNs != 0 || d.Speedup != 0 {
		t.Fatalf("new benchmark delta %+v", d)
	}
}

func TestDeltaAllocRegression(t *testing.T) {
	old := &Report{Schema: SchemaVersion, Date: "2026-07-25", Benchmarks: []Benchmark{
		{Name: "zero", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "near-zero", NsPerOp: 100, AllocsPerOp: 4},
		{Name: "heavy", NsPerOp: 100, AllocsPerOp: 1e6},
	}}
	new := &Report{Schema: SchemaVersion, Date: "2026-07-26", Benchmarks: []Benchmark{
		{Name: "zero", NsPerOp: 90, AllocsPerOp: 3},      // 0 -> 3: regression
		{Name: "near-zero", NsPerOp: 90, AllocsPerOp: 5}, // within 20%+1 slack
		{Name: "heavy", NsPerOp: 90, AllocsPerOp: 2e6},   // not a zero-alloc bench
		{Name: "fresh", NsPerOp: 50, AllocsPerOp: 10},    // unknown baseline
	}}
	got := map[string]bool{}
	for _, d := range Delta(old, new) {
		got[d.Name] = d.AllocRegression(0.20)
	}
	want := map[string]bool{"zero": true, "near-zero": false, "heavy": false, "fresh": false}
	for name, wantReg := range want {
		if got[name] != wantReg {
			t.Errorf("%s: AllocRegression = %v, want %v", name, got[name], wantReg)
		}
	}
	// A 0 -> 1 wobble must not fail a build.
	d := BenchDelta{Known: true, OldAllocs: 0, NewAllocs: 1}
	if d.AllocRegression(0.20) {
		t.Error("0 -> 1 allocs flagged as regression; absolute slack must absorb it")
	}
}

func TestDeltaTimeRegression(t *testing.T) {
	cases := []struct {
		name   string
		d      BenchDelta
		expect bool
	}{
		// 1s → 1.8s is past 75% — a real wall-clock regression.
		{"algorithmic regression", BenchDelta{Known: true, OldNs: 1e9, NewNs: 1.8e9}, true},
		// 1s → 1.5s sits inside the tolerance.
		{"within tolerance", BenchDelta{Known: true, OldNs: 1e9, NewNs: 1.5e9}, false},
		// 40µs → 150µs is >75% but within the absolute slack: micro-bench
		// jitter, not a regression.
		{"micro jitter absorbed by slack", BenchDelta{Known: true, OldNs: 40e3, NewNs: 150e3}, false},
		// A new benchmark has nothing to regress against.
		{"unknown baseline", BenchDelta{Known: false, OldNs: 0, NewNs: 5e9}, false},
		// Improvements never trip the gate.
		{"speedup", BenchDelta{Known: true, OldNs: 2e9, NewNs: 1e9}, false},
	}
	for _, c := range cases {
		if got := c.d.TimeRegression(0.75, 250e3); got != c.expect {
			t.Errorf("%s: TimeRegression = %v, want %v", c.name, got, c.expect)
		}
	}
}
