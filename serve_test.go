package coca

import (
	"context"
	"sync"
	"testing"
	"time"
)

func serveOpts() Options {
	return Options{
		Model: "VGG16_BN", Dataset: "ESC-50", Classes: 10,
		NumClients: 3, Rounds: 2, RoundFrames: 50, Budget: 40, Seed: 4,
	}
}

func TestServeAndDialFleet(t *testing.T) {
	ctx := context.Background()
	srv, clients, err := ServeAndDial(ctx, serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	var wg sync.WaitGroup
	reports := make([]Report, len(clients))
	errs := make([]error, len(clients))
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			reports[i], errs[i] = cl.Run(ctx, 0)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, rep := range reports {
		if rep.Frames != 2*50 {
			t.Fatalf("client %d frames = %d, want 100", i, rep.Frames)
		}
		if rep.AvgLatencyMs <= 0 || rep.AvgLatencyMs >= rep.EdgeOnlyLatencyMs {
			t.Fatalf("client %d latency not reduced: %+v", i, rep)
		}
	}
	for i, cl := range clients {
		if v := cl.ViewVersion(); v != 2 {
			t.Fatalf("client %d view version %d after 2 rounds, want 2", i, v)
		}
		_ = cl.Close()
	}
	allocs, _, sessions := srv.Stats()
	if allocs < 3*2 {
		t.Fatalf("server allocations = %d, want >= 6", allocs)
	}
	if sessions != 0 {
		t.Fatalf("%d sessions still open after client closes", sessions)
	}
}

func TestDialValidatesClientID(t *testing.T) {
	ctx := context.Background()
	srv, err := Serve(ctx, "127.0.0.1:0", serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	if _, err := Dial(ctx, srv.Addr(), 99, serveOpts()); err == nil {
		t.Fatal("out-of-fleet client id accepted")
	}
}

func TestServerShutdownIdempotentAndDraining(t *testing.T) {
	ctx := context.Background()
	srv, clients, err := ServeAndDial(ctx, serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range clients {
		if _, err := cl.Run(ctx, 1); err != nil {
			t.Fatal(err)
		}
		_ = cl.Close()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	// New connections must be refused after shutdown.
	if _, err := Dial(ctx, srv.Addr(), 0, serveOpts()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
