package coca

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"
)

func serveOpts() Options {
	return Options{
		Model: "VGG16_BN", Dataset: "ESC-50", Classes: 10,
		NumClients: 3, Rounds: 2, RoundFrames: 50, Budget: 40, Seed: 4,
	}
}

func TestServeAndDialFleet(t *testing.T) {
	ctx := context.Background()
	srv, clients, err := ServeAndDial(ctx, serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	var wg sync.WaitGroup
	reports := make([]Report, len(clients))
	errs := make([]error, len(clients))
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			reports[i], errs[i] = cl.Run(ctx, 0)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, rep := range reports {
		if rep.Frames != 2*50 {
			t.Fatalf("client %d frames = %d, want 100", i, rep.Frames)
		}
		if rep.AvgLatencyMs <= 0 || rep.AvgLatencyMs >= rep.EdgeOnlyLatencyMs {
			t.Fatalf("client %d latency not reduced: %+v", i, rep)
		}
	}
	for i, cl := range clients {
		if v := cl.ViewVersion(); v != 2 {
			t.Fatalf("client %d view version %d after 2 rounds, want 2", i, v)
		}
		_ = cl.Close()
	}
	allocs, _, sessions := srv.Stats()
	if allocs < 3*2 {
		t.Fatalf("server allocations = %d, want >= 6", allocs)
	}
	if sessions != 0 {
		t.Fatalf("%d sessions still open after client closes", sessions)
	}
}

func TestDialValidatesClientID(t *testing.T) {
	ctx := context.Background()
	srv, err := Serve(ctx, "127.0.0.1:0", serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	if _, err := Dial(ctx, srv.Addr(), 99, serveOpts()); err == nil {
		t.Fatal("out-of-fleet client id accepted")
	}
}

func TestServerShutdownIdempotentAndDraining(t *testing.T) {
	ctx := context.Background()
	srv, clients, err := ServeAndDial(ctx, serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range clients {
		if _, err := cl.Run(ctx, 1); err != nil {
			t.Fatal(err)
		}
		_ = cl.Close()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	// New connections must be refused after shutdown.
	if _, err := Dial(ctx, srv.Addr(), 0, serveOpts()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServeFederatedPeers runs two public-API servers that name each
// other in Options.Peers: both fleets drive rounds, and both endpoints
// must end up having pushed and merged peer deltas (cells and frequency
// increments traveling the wire in both directions).
func TestServeFederatedPeers(t *testing.T) {
	ctx := context.Background()
	base := serveOpts()
	base.NumClients = 4
	base.Rounds = 3
	base.PeerSyncInterval = 30 * time.Millisecond

	// Reserve both ports up front so each server can name its peer
	// before either listens; PeerSet dials lazily and retries.
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		_ = l.Close()
	}
	srvs := make([]*Server, 2)
	for i := range srvs {
		o := base
		o.NodeID = i
		o.Peers = []string{addrs[1-i]}
		srv, err := Serve(ctx, addrs[i], o)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
	}
	defer func() {
		for _, srv := range srvs {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = srv.Shutdown(sctx)
			cancel()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, base.NumClients)
	for id := 0; id < base.NumClients; id++ {
		cl, err := Dial(ctx, addrs[id/2], id, base)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			_, errs[id] = cl.Run(ctx, 0)
		}(id, cl)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	// Let a few sync ticks land after the last uploads.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srvs[0].PeerMerges() > 0 && srvs[1].PeerMerges() > 0 &&
			srvs[0].SyncStats().CellsSent > 0 && srvs[1].SyncStats().CellsSent > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federation did not sync both ways: s0=%+v (merges %d), s1=%+v (merges %d)",
				srvs[0].SyncStats(), srvs[0].PeerMerges(), srvs[1].SyncStats(), srvs[1].PeerMerges())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
