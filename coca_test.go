package coca

import (
	"strings"
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Options{Classes: 10, RoundFrames: 60, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 4*2*60 {
		t.Fatalf("frames = %d, want 480", rep.Frames)
	}
	if rep.EdgeOnlyLatencyMs <= 0 || rep.AvgLatencyMs <= 0 {
		t.Fatalf("degenerate latencies: %+v", rep)
	}
	if rep.AvgLatencyMs >= rep.EdgeOnlyLatencyMs {
		t.Fatalf("caching did not reduce latency: %v >= %v", rep.AvgLatencyMs, rep.EdgeOnlyLatencyMs)
	}
	if rep.LatencyReduction() <= 0 || rep.LatencyReduction() >= 1 {
		t.Fatalf("reduction = %v", rep.LatencyReduction())
	}
	if len(rep.PerClient) != 4 {
		t.Fatalf("per-client reports = %d", len(rep.PerClient))
	}
	if !strings.Contains(rep.String(), "latency=") {
		t.Fatalf("report string: %q", rep.String())
	}
}

func TestNewSystemUnknownPresets(t *testing.T) {
	if _, err := NewSystem(Options{Model: "BERT"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := NewSystem(Options{Dataset: "CIFAR"}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestNewSystemLongTailAndNonIID(t *testing.T) {
	sys, err := NewSystem(Options{
		Classes: 10, RoundFrames: 60, Rounds: 2,
		LongTailRho: 20, NonIIDLevel: 2, NumClients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.HitRatio == 0 {
		t.Fatal("no hits on a concentrated workload")
	}
}

func TestSystemDeterministic(t *testing.T) {
	run := func() Report {
		sys, err := NewSystem(Options{Classes: 10, RoundFrames: 60, Rounds: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.AvgLatencyMs != b.AvgLatencyMs || a.Accuracy != b.Accuracy {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestThetaDefaultPerModel(t *testing.T) {
	for _, tc := range []struct {
		model string
		want  float64
	}{
		{"ResNet101", 0.012},
		{"VGG16_BN", 0.035},
		{"AST", 0.022},
	} {
		o, err := Options{Model: tc.model}.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		space, _, err := o.resolve()
		if err != nil {
			t.Fatal(err)
		}
		if got := o.theta(space.Arch); got != tc.want {
			t.Errorf("%s theta = %v, want %v", tc.model, got, tc.want)
		}
	}
}

func TestNewSystemRouted(t *testing.T) {
	sys, err := NewSystem(Options{
		Model: "VGG16_BN", Dataset: "ESC-50", Classes: 12,
		NumClients: 8, RoundFrames: 40, Rounds: 3, Budget: 40,
		NonIIDLevel: 4,
		Routing:     &RoutingOptions{Servers: 4, Policy: "semantic", RebalanceEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 8*3*40 {
		t.Fatalf("frames = %d, want %d", rep.Frames, 8*3*40)
	}
	if rep.Routing == nil || rep.Routing.Servers != 4 {
		t.Fatalf("routing report: %+v", rep.Routing)
	}
	if len(rep.PerClient) != 8 {
		t.Fatalf("per-client reports = %d", len(rep.PerClient))
	}
	if rep.HitRatio <= 0 {
		t.Fatalf("degenerate routed run: %+v", rep)
	}
}

func TestNewSystemRoutedBadPolicy(t *testing.T) {
	_, err := NewSystem(Options{Routing: &RoutingOptions{Policy: "nearest"}})
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("bad policy error: %v", err)
	}
}
