// Command coca-router runs the routing front door for a fleet of
// coca-server processes: a wire-facing control plane that owns
// client→server placement. Clients dial the router first; every session
// open is admitted (per-client rate limit, per-backend circuit breaker),
// placed on a backend via consistent-hash shuffle-shard placement, and
// answered with a redirect naming that backend's address — the client
// then dials its edge server directly, so no inference or coordination
// traffic ever proxies through the router.
//
// A background health-check loop probes every backend each -hc-interval
// (a dial-and-close); repeated failures open that backend's breaker,
// steering new clients to the other members of their shuffle shards, and
// recovery closes it again through the breaker's half-open probes.
//
// The semantic placement policy needs per-client class profiles, which
// never reach a redirect-only front door, so -route semantic degrades to
// hash placement here (see internal/routing.FrontDoor); use the
// in-process routed deployment for semantic steering.
//
// Usage:
//
//	coca-router -listen :7069 -servers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//	coca-router -listen :7069 -servers host1:7070,host2:7070 -shard 2 -rate 100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"coca/internal/protocol"
	"coca/internal/routing"
	"coca/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", ":7069", "listen address")
		servers = flag.String("servers", "", "comma-separated backend coca-server addresses (host:port,...)")
		route   = flag.String("route", "hash", "placement policy (static, hash, semantic, random; semantic degrades to hash at a front door)")
		shard   = flag.Int("shard", 0, "shuffle-shard size per client (0 = min(3, servers))")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per server on the hash ring (0 = default)")
		seed    = flag.Uint64("seed", 1, "placement hash seed (must match across router replicas)")
		hcInt   = flag.Duration("hc-interval", 2*time.Second, "backend health-check cadence (0 disables probing)")
		hcTime  = flag.Duration("hc-timeout", time.Second, "per-probe dial timeout")
		rate    = flag.Float64("rate", 0, "per-client admission rate limit in opens/sec (0 = unlimited)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("coca-router: -servers must list at least one backend address")
	}
	policy, err := routing.ParsePolicy(*route)
	if err != nil {
		log.Fatal(err)
	}
	fd := routing.NewFrontDoor(addrs, routing.Config{
		Policy:    policy,
		ShardSize: *shard,
		VNodes:    *vnodes,
		Seed:      *seed,
		Rate:      routing.RateConfig{PerSec: *rate},
	})

	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "coca-router: %s placement over %d backend(s), listening on %s\n",
		policy, len(addrs), l.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	connCtx, cancelConns := context.WithCancel(context.Background())
	defer cancelConns()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Every open on this coordinator answers with a redirect
				// frame; the connection then ends (clients dial onward).
				if err := protocol.ServeConn(connCtx, conn, fd); err != nil {
					log.Printf("session: %v", err)
				}
				_ = conn.Close()
			}()
		}
	}()

	if *hcInt > 0 {
		probe := func(addr string) error {
			ctx, cancel := context.WithTimeout(connCtx, *hcTime)
			defer cancel()
			conn, err := transport.DialContext(ctx, addr)
			if err != nil {
				return err
			}
			return conn.Close()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(*hcInt)
			defer ticker.Stop()
			for {
				select {
				case <-sigCtx.Done():
					return
				case <-ticker.C:
					fd.HealthCheck(probe)
					for s := range addrs {
						if st := fd.BreakerState(s); st != routing.BreakerClosed {
							log.Printf("health: backend %d (%s) breaker %s", s, addrs[s], st)
						}
					}
				}
			}
		}()
	}

	<-sigCtx.Done()
	_ = l.Close()
	cancelConns()
	wg.Wait()
	st := fd.Stats()
	fmt.Fprintln(os.Stderr, "coca-router: shut down cleanly; final stats:")
	fmt.Fprintf(os.Stderr, "  opens placed     %d\n", st.Opens)
	fmt.Fprintf(os.Stderr, "  breaker denials  %d\n", st.BreakerDenials)
	fmt.Fprintf(os.Stderr, "  rate limited     %d\n", st.RateLimited)
}
