// Command coca-router runs the routing front door for a fleet of
// coca-server processes: a wire-facing control plane that owns
// client→server placement. Clients dial the router first; every session
// open is admitted (per-client rate limit, per-backend circuit breaker),
// placed on a backend via consistent-hash shuffle-shard placement, and
// answered with a redirect naming that backend's address — the client
// then dials its edge server directly, so no inference or coordination
// traffic ever proxies through the router.
//
// A background health-check loop probes every backend each -hc-interval
// (a dial-and-close); repeated failures open that backend's breaker,
// steering new clients to the other members of their shuffle shards, and
// recovery closes it again through the breaker's half-open probes.
//
// The overload tier's queue-depth load shedding (internal/overload,
// routing.Config.Shed) needs a live view of per-backend queue depth,
// which a redirect-only front door does not have — clients talk to their
// edge server directly after placement. Depth-driven shedding therefore
// runs in the in-process routed deployment (Options.Routing), where the
// router holds the backend servers themselves; this front door degrades
// under overload through its rate limit and breakers, and reports any
// shed decisions in /stats for symmetry.
//
// The semantic placement policy needs per-client class profiles, which
// never reach a redirect-only front door, so -route semantic degrades to
// hash placement here (see internal/routing.FrontDoor); use the
// in-process routed deployment for semantic steering.
//
// Live observability: -pprof exposes net/http/pprof and a JSON /stats
// page (admissions, rejections by cause, redirects, per-backend breaker
// state and trip counts); -metrics serves the process-wide telemetry
// registry in Prometheus text format at /metrics — when both name the
// same address one listener serves everything. -trace appends
// timestamped JSON-lines control-plane events (migrations, breaker
// transitions) to a file.
//
// Usage:
//
//	coca-router -listen :7069 -servers 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072
//	coca-router -listen :7069 -servers host1:7070,host2:7070 -shard 2 -rate 100
//	coca-router -listen :7069 -servers host1:7070 -pprof localhost:6061 -metrics localhost:6061
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"coca/internal/protocol"
	"coca/internal/routing"
	"coca/internal/telemetry"
	"coca/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", ":7069", "listen address")
		servers = flag.String("servers", "", "comma-separated backend coca-server addresses (host:port,...)")
		route   = flag.String("route", "hash", "placement policy (static, hash, semantic, random; semantic degrades to hash at a front door)")
		shard   = flag.Int("shard", 0, "shuffle-shard size per client (0 = min(3, servers))")
		vnodes  = flag.Int("vnodes", 0, "virtual nodes per server on the hash ring (0 = default)")
		seed    = flag.Uint64("seed", 1, "placement hash seed (must match across router replicas)")
		hcInt   = flag.Duration("hc-interval", 2*time.Second, "backend health-check cadence (0 disables probing)")
		hcTime  = flag.Duration("hc-timeout", time.Second, "per-probe dial timeout")
		rate    = flag.Float64("rate", 0, "per-client admission rate limit in opens/sec (0 = unlimited)")

		pprofA   = flag.String("pprof", "", "expose net/http/pprof and JSON /stats on this address (e.g. localhost:6061; empty = off)")
		metricsA = flag.String("metrics", "", "expose Prometheus /metrics on this address (may equal -pprof to share one listener; empty = off)")
		traceF   = flag.String("trace", "", "append JSON-lines telemetry events (migrations, breaker transitions) to this file (empty = off)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*servers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("coca-router: -servers must list at least one backend address")
	}
	policy, err := routing.ParsePolicy(*route)
	if err != nil {
		log.Fatal(err)
	}
	fd := routing.NewFrontDoor(addrs, routing.Config{
		Policy:    policy,
		ShardSize: *shard,
		VNodes:    *vnodes,
		Seed:      *seed,
		Rate:      routing.RateConfig{PerSec: *rate},
	})

	// statsHandler renders the control-plane counters the front door had
	// no runtime window into before: admission outcomes plus per-backend
	// breaker state, as JSON for curl/scripts (Prometheus series live on
	// /metrics).
	statsHandler := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		type backend struct {
			ID      int    `json:"id"`
			Addr    string `json:"addr"`
			Breaker string `json:"breaker"`
			Trips   int    `json:"trips"`
		}
		st := fd.Stats()
		out := struct {
			Admitted       int       `json:"admitted"`
			Redirects      int       `json:"redirects"`
			RateLimited    int       `json:"rate_limited"`
			BreakerDenials int       `json:"breaker_denials"`
			Shed           int       `json:"shed"`
			Migrations     int       `json:"migrations"`
			Backends       []backend `json:"backends"`
		}{
			Admitted:       st.Opens,
			Redirects:      st.Opens, // a front-door open always answers with a redirect
			RateLimited:    st.RateLimited,
			BreakerDenials: st.BreakerDenials,
			Shed:           st.Shed,
			Migrations:     st.Migrations,
		}
		for s, addr := range addrs {
			out.Backends = append(out.Backends, backend{
				ID: s, Addr: addr,
				Breaker: fd.BreakerState(s).String(),
				Trips:   fd.BreakerTrips(s),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	if *pprofA != "" {
		// pprof registers on the default mux at import time; /stats (and
		// /metrics when sharing the address) join it there so one
		// listener serves all diagnostics.
		http.Handle("/stats", statsHandler)
		if *metricsA == *pprofA {
			http.Handle("/metrics", telemetry.Handler())
		}
		go func() {
			fmt.Fprintf(os.Stderr, "coca-router: pprof on http://%s/debug/pprof/, stats on http://%s/stats\n", *pprofA, *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	if *metricsA != "" && *metricsA != *pprofA {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler())
		mux.Handle("/stats", statsHandler)
		go func() {
			fmt.Fprintf(os.Stderr, "coca-router: metrics on http://%s/metrics\n", *metricsA)
			if err := http.ListenAndServe(*metricsA, mux); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *traceF != "" {
		f, err := os.OpenFile(*traceF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		telemetry.SetTracer(telemetry.NewTracer(f))
		defer func() {
			telemetry.SetTracer(nil)
			_ = f.Close()
		}()
		fmt.Fprintf(os.Stderr, "coca-router: tracing events to %s\n", *traceF)
	}

	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "coca-router: %s placement over %d backend(s), listening on %s\n",
		policy, len(addrs), l.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	connCtx, cancelConns := context.WithCancel(context.Background())
	defer cancelConns()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Every open on this coordinator answers with a redirect
				// frame; the connection then ends (clients dial onward).
				if err := protocol.ServeConn(connCtx, conn, fd); err != nil {
					log.Printf("session: %v", err)
				}
				_ = conn.Close()
			}()
		}
	}()

	if *hcInt > 0 {
		probe := func(addr string) error {
			ctx, cancel := context.WithTimeout(connCtx, *hcTime)
			defer cancel()
			conn, err := transport.DialContext(ctx, addr)
			if err != nil {
				return err
			}
			return conn.Close()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ticker := time.NewTicker(*hcInt)
			defer ticker.Stop()
			for {
				select {
				case <-sigCtx.Done():
					return
				case <-ticker.C:
					fd.HealthCheck(probe)
					for s := range addrs {
						if st := fd.BreakerState(s); st != routing.BreakerClosed {
							log.Printf("health: backend %d (%s) breaker %s", s, addrs[s], st)
						}
					}
				}
			}
		}()
	}

	<-sigCtx.Done()
	_ = l.Close()
	cancelConns()
	wg.Wait()
	st := fd.Stats()
	snap := telemetry.Snapshot()
	fmt.Fprintln(os.Stderr, "coca-router: shut down cleanly; final stats:")
	fmt.Fprintf(os.Stderr, "  opens placed     %d\n", st.Opens)
	fmt.Fprintf(os.Stderr, "  breaker denials  %d\n", st.BreakerDenials)
	fmt.Fprintf(os.Stderr, "  rate limited     %d\n", st.RateLimited)
	fmt.Fprintf(os.Stderr, "  shed             %d\n", st.Shed)
	fmt.Fprintf(os.Stderr, "  redirects issued %d\n", int64(snap.Value("coca_routing_redirects_total")))
	fmt.Fprintf(os.Stderr, "  breaker trips    %d\n", int64(snap.Value("coca_routing_breaker_trips_total")))
}
