// Command coca-client runs a CoCa edge client over TCP: it connects to a
// coca-server, opens a coordination session (wire protocol v2: allocation
// deltas instead of full cache tables), and drives a synthetic sample
// stream through cached inference for the requested number of rounds,
// printing the latency/accuracy summary.
//
// The model, dataset and class-count flags must match the server's, and
// -clients must name the fleet size so every client carves the same
// workload partition: client -id K of -clients N always streams partition
// K of N, regardless of which process it runs in.
//
// Usage:
//
//	coca-client -addr localhost:7070 -model ResNet101 -dataset UCF101 \
//	    -classes 50 -id 0 -clients 4 -rounds 5 -budget 300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/stream"
	"coca/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7070", "server address")
		modelN  = flag.String("model", "ResNet101", "model preset")
		dataN   = flag.String("dataset", "UCF101", "dataset preset")
		classes = flag.Int("classes", 0, "dataset subset size (0 = all)")
		id      = flag.Int("id", 0, "client id (0 ≤ id < clients)")
		clients = flag.Int("clients", 1, "fleet size: total clients sharing the workload")
		theta   = flag.Float64("theta", 0.012, "hit threshold Θ")
		budget  = flag.Int("budget", 300, "cache budget Π in entries")
		rounds  = flag.Int("rounds", 5, "rounds to run")
		frames  = flag.Int("frames", core.DefaultRoundFrames, "frames per round F")
		bias    = flag.Float64("bias", 0.05, "client feature-bias weight")
		seed    = flag.Uint64("seed", 7, "workload seed (must match across the fleet)")
	)
	flag.Parse()

	if *clients < 1 || *id < 0 || *id >= *clients {
		log.Fatalf("coca-client: id %d outside fleet of %d clients", *id, *clients)
	}

	arch, err := model.ByName(*modelN)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*dataN)
	if err != nil {
		log.Fatal(err)
	}
	if *classes > 0 {
		ds = ds.Subset(*classes)
	}
	space := semantics.NewSpace(ds, arch)

	ctx := context.Background()
	conn, err := transport.DialContext(ctx, *addr)
	if err != nil {
		log.Fatal(err)
	}
	coord := protocol.NewSessionClient(conn, ds.NumClasses, arch.NumLayers)
	defer coord.Close()

	client, err := core.NewClient(ctx, space, coord, core.ClientConfig{
		ID: *id, Theta: *theta, Budget: *budget, RoundFrames: *frames,
		EnvBiasWeight: *bias, EnvSeed: uint64(*id) + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// The fleet-wide partition: every process builds the same N-client
	// partition and takes its own slice, so streams are disjoint and
	// consistent no matter how the fleet is launched.
	part, err := stream.NewPartition(stream.Config{
		Dataset: ds, NumClients: *clients, SceneMeanFrames: 25,
		WorkingSetSize: 15, WorkingSetChurn: 0.05, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := part.Client(*id)

	var acc metrics.Accumulator
	for round := 0; round < *rounds; round++ {
		if err := client.BeginRound(); err != nil {
			log.Fatalf("round %d begin: %v", round, err)
		}
		for f := 0; f < *frames; f++ {
			smp := gen.Next()
			res := client.Infer(smp)
			acc.Record(metrics.Obs{
				LatencyMs: res.LatencyMs, LookupMs: res.LookupMs,
				Correct: res.Pred == smp.Class, Hit: res.Hit, HitLayer: res.HitLayer,
			})
		}
		if err := client.EndRound(); err != nil {
			log.Fatalf("round %d end: %v", round, err)
		}
		s := acc.Summary()
		fmt.Printf("round %d: avg %.2f ms, accuracy %.2f%%, hit ratio %.1f%%, cache view v%d (%d cells)\n",
			round, s.AvgLatencyMs, 100*s.Accuracy, 100*s.HitRatio,
			client.View().Version(), client.View().NumCells())
	}
	s := acc.Summary()
	fmt.Printf("\nclient %d/%d done: frames=%d avg=%.2fms p95=%.2fms acc=%.2f%% hit=%.1f%% hitAcc=%.2f%% (edge-only %.2fms)\n",
		*id, *clients, s.Frames, s.AvgLatencyMs, s.P95LatencyMs, 100*s.Accuracy,
		100*s.HitRatio, 100*s.HitAccuracy, arch.TotalLatencyMs())
}
