// Command coca-client runs a CoCa edge client over TCP: it connects to a
// coca-server (or a coca-router front door), opens a coordination session
// (wire protocol v3: allocation deltas with per-request deadline
// propagation, negotiated down against older servers), and drives a
// synthetic sample stream through cached inference for the requested
// number of rounds, printing the latency/accuracy summary.
//
// The model, dataset and class-count flags must match the server's, and
// -clients must name the fleet size so every client carves the same
// workload partition: client -id K of -clients N always streams partition
// K of N, regardless of which process it runs in.
//
// Dials retry with seeded-jitter exponential backoff
// (-dial-retries/-dial-backoff; the jitter de-correlates fleet members
// recovering from a shared brown-out) under a leaky-bucket retry budget
// (-retry-budget; retries past the budget fail fast instead of piling
// onto an overloaded server). -request-timeout puts a deadline on each
// coordination request, carried in the wire frames so the server drops
// expired work instead of serving it late; -max-stale-rounds arms the
// serve-stale shield: when the server brown-outs mid-run, the client
// keeps serving inference from its last-synced allocation for up to
// that many rounds instead of failing the run.
//
// Redirects are followed transparently: a routing front door answers the
// session open with its placement decision, and a mid-stream redirect —
// the routing tier migrating this session during a brown-out — makes the
// client re-open on the named server and resume, recovering its exact
// allocation through the delta protocol's full-table resync.
//
// Usage:
//
//	coca-client -addr localhost:7070 -model ResNet101 -dataset UCF101 \
//	    -classes 50 -id 0 -clients 4 -rounds 5 -budget 300
//	coca-client -addr localhost:7069 -dial-retries 5 -dial-backoff 200ms
//	coca-client -addr localhost:7070 -request-timeout 2s -max-stale-rounds 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/overload"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/stream"
	"coca/internal/transport"
	"coca/internal/xrand"
)

// maxRedirectHops bounds how many chained redirects one open or
// migration follows (guards against routing loops).
const maxRedirectHops = 4

// dialer dials with retry-and-backoff and builds session coordinators.
type dialer struct {
	retries int
	backoff time.Duration
	seed    uint64
	budget  *overload.RetryBudget
	classes int
	layers  int
}

// dial connects to addr, retrying transient failures with seeded-jitter
// exponential backoff under the retry budget: each retry spends a
// token, and an empty bucket fails the dial fast rather than joining a
// retry storm.
func (d *dialer) dial(ctx context.Context, addr string) (transport.Conn, error) {
	d.budget.Note()
	var err error
	for attempt := 0; ; attempt++ {
		var conn transport.Conn
		conn, err = transport.DialContext(ctx, addr)
		if err == nil {
			return conn, nil
		}
		if attempt >= d.retries || ctx.Err() != nil {
			break
		}
		if !d.budget.Allow() {
			return nil, fmt.Errorf("dial %s: retry budget exhausted after attempt %d: %w", addr, attempt+1, err)
		}
		wait := overload.Backoff(d.backoff, attempt, d.seed)
		log.Printf("dial %s: %v (retrying in %s)", addr, err, wait)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dial %s (after %d attempts): %w", addr, d.retries+1, err)
}

// session dials addr and wraps the connection in a session coordinator.
func (d *dialer) session(ctx context.Context, addr string) (*protocol.SessionClient, error) {
	conn, err := d.dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return protocol.NewSessionClient(conn, d.classes, d.layers), nil
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:7070", "server (or router front door) address")
		modelN  = flag.String("model", "ResNet101", "model preset")
		dataN   = flag.String("dataset", "UCF101", "dataset preset")
		classes = flag.Int("classes", 0, "dataset subset size (0 = all)")
		id      = flag.Int("id", 0, "client id (0 ≤ id < clients)")
		clients = flag.Int("clients", 1, "fleet size: total clients sharing the workload")
		theta   = flag.Float64("theta", 0.012, "hit threshold Θ")
		budget  = flag.Int("budget", 300, "cache budget Π in entries")
		rounds  = flag.Int("rounds", 5, "rounds to run")
		frames  = flag.Int("frames", core.DefaultRoundFrames, "frames per round F")
		bias    = flag.Float64("bias", 0.05, "client feature-bias weight")
		seed    = flag.Uint64("seed", 7, "workload seed (must match across the fleet)")
		retries = flag.Int("dial-retries", 3, "extra connection attempts after a failed dial")
		backoff = flag.Duration("dial-backoff", 100*time.Millisecond, "base dial-retry backoff (doubles per attempt, equal-jittered per client)")
		rbudget = flag.Float64("retry-budget", 0.1, "retry-budget refill ratio: tokens earned per request, spent per retry (negative = unlimited retries)")
		reqTO   = flag.Duration("request-timeout", 0, "per-request deadline, propagated to the server in wire frames (0 = none)")
		stale   = flag.Int("max-stale-rounds", 0, "serve-stale shield: rounds to keep serving the last-synced allocation through a server brown-out (0 = fail fast)")
	)
	flag.Parse()

	if *clients < 1 || *id < 0 || *id >= *clients {
		log.Fatalf("coca-client: id %d outside fleet of %d clients", *id, *clients)
	}

	arch, err := model.ByName(*modelN)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*dataN)
	if err != nil {
		log.Fatal(err)
	}
	if *classes > 0 {
		ds = ds.Subset(*classes)
	}
	space := semantics.NewSpace(ds, arch)

	ctx := context.Background()
	var retryBudget *overload.RetryBudget
	if *rbudget >= 0 {
		retryBudget = overload.NewRetryBudget(overload.RetryBudgetConfig{Ratio: *rbudget, Burst: float64(*retries)})
	}
	d := &dialer{
		retries: *retries, backoff: *backoff,
		seed:    xrand.HashSeed(*seed, 0x6a697474, uint64(*id)), // the serve-tier dial-jitter stream
		budget:  retryBudget,
		classes: ds.NumClasses, layers: arch.NumLayers,
	}

	// Initial open, following front-door placement redirects.
	coord, err := d.session(ctx, *addr)
	if err != nil {
		log.Fatal(err)
	}
	var client *core.Client
	cfg := core.ClientConfig{
		ID: *id, Theta: *theta, Budget: *budget, RoundFrames: *frames,
		EnvBiasWeight: *bias, EnvSeed: uint64(*id) + 1,
		RequestTimeout: *reqTO, MaxStaleRounds: *stale,
	}
	for hop := 0; ; hop++ {
		client, err = core.NewClient(ctx, space, coord, cfg)
		if err == nil {
			break
		}
		_ = coord.Close()
		var re *core.RedirectError
		if !errors.As(err, &re) || hop >= maxRedirectHops {
			log.Fatal(err)
		}
		log.Printf("redirected to %s (%s)", re.Addr, re.Reason)
		if coord, err = d.session(ctx, re.Addr); err != nil {
			log.Fatal(err)
		}
	}
	defer coord.Close()
	defer client.Close()

	// migrate re-opens the session on the redirect target and retires the
	// old connection; the next allocation resyncs the full table.
	migrate := func(target string) {
		for hop := 0; ; hop++ {
			next, err := d.session(ctx, target)
			if err != nil {
				log.Fatal(err)
			}
			err = client.Reconnect(next)
			if err == nil {
				_ = coord.Close()
				coord = next
				return
			}
			_ = next.Close()
			var re *core.RedirectError
			if !errors.As(err, &re) || hop >= maxRedirectHops {
				log.Fatal(err)
			}
			target = re.Addr
		}
	}
	// withMigration retries op once after following a redirect error.
	withMigration := func(op func() error) error {
		err := op()
		var re *core.RedirectError
		if !errors.As(err, &re) {
			return err
		}
		log.Printf("session migrating to %s (%s)", re.Addr, re.Reason)
		migrate(re.Addr)
		return op()
	}

	// The fleet-wide partition: every process builds the same N-client
	// partition and takes its own slice, so streams are disjoint and
	// consistent no matter how the fleet is launched.
	part, err := stream.NewPartition(stream.Config{
		Dataset: ds, NumClients: *clients, SceneMeanFrames: 25,
		WorkingSetSize: 15, WorkingSetChurn: 0.05, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	gen := part.Client(*id)

	var acc metrics.Accumulator
	for round := 0; round < *rounds; round++ {
		if err := withMigration(client.BeginRound); err != nil {
			log.Fatalf("round %d begin: %v", round, err)
		}
		for f := 0; f < *frames; f++ {
			smp := gen.Next()
			res := client.Infer(smp)
			acc.Record(metrics.Obs{
				LatencyMs: res.LatencyMs, LookupMs: res.LookupMs,
				Correct: res.Pred == smp.Class, Hit: res.Hit, HitLayer: res.HitLayer,
			})
		}
		if err := withMigration(client.EndRound); err != nil {
			log.Fatalf("round %d end: %v", round, err)
		}
		s := acc.Summary()
		fmt.Printf("round %d: avg %.2f ms, accuracy %.2f%%, hit ratio %.1f%%, cache view v%d (%d cells)\n",
			round, s.AvgLatencyMs, 100*s.Accuracy, 100*s.HitRatio,
			client.View().Version(), client.View().NumCells())
	}
	s := acc.Summary()
	fmt.Printf("\nclient %d/%d done: frames=%d avg=%.2fms p95=%.2fms acc=%.2f%% hit=%.1f%% hitAcc=%.2f%% (edge-only %.2fms)\n",
		*id, *clients, s.Frames, s.AvgLatencyMs, s.P95LatencyMs, 100*s.Accuracy,
		100*s.HitRatio, 100*s.HitAccuracy, arch.TotalLatencyMs())
}
