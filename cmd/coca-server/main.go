// Command coca-server runs a CoCa edge server over TCP: it builds the
// simulated model/dataset universe, initializes the global cache table from
// the shared dataset, and serves session, cache-allocation and
// global-update requests from coca-client processes (wire protocol v2,
// with v1 clients still accepted).
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting
// new connections, lets in-flight sessions drain for -drain, then closes
// the remaining connections and exits.
//
// Usage:
//
//	coca-server -addr :7070 -model ResNet101 -dataset UCF101 -classes 50 -theta 0.012
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		modelN  = flag.String("model", "ResNet101", "model preset (VGG16_BN, ResNet50, ResNet101, ResNet152, AST)")
		dataN   = flag.String("dataset", "UCF101", "dataset preset (ImageNet-100, UCF101, ESC-50)")
		classes = flag.Int("classes", 0, "restrict the dataset to its first N classes (0 = all)")
		theta   = flag.Float64("theta", 0.012, "hit threshold Θ used for layer profiling")
		gamma   = flag.Float64("gamma", 0.99, "global merge decay γ (Eq. 4)")
		seed    = flag.Uint64("seed", 1, "shared-dataset seed")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight sessions")
	)
	flag.Parse()

	arch, err := model.ByName(*modelN)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*dataN)
	if err != nil {
		log.Fatal(err)
	}
	if *classes > 0 {
		ds = ds.Subset(*classes)
	}
	fmt.Fprintf(os.Stderr, "coca-server: building %s × %s universe...\n", arch.Name, ds.Name)
	space := semantics.NewSpace(ds, arch)
	srv := core.NewServer(space, core.ServerConfig{Theta: *theta, Gamma: *gamma, Seed: *seed})

	l, err := transport.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "coca-server: %s × %s (%d classes, %d cache sites) listening on %s\n",
		arch.Name, ds.Name, ds.NumClasses, arch.NumLayers, l.Addr())

	// Shutdown plumbing: the signal cancels sigCtx; connCtx stays open
	// through the drain window so in-flight sessions can finish their
	// round trips, then its cancellation force-closes the stragglers.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	connCtx, cancelConns := context.WithCancel(context.Background())
	defer cancelConns()

	// The accept loop itself is counted in the WaitGroup so that a
	// connection accepted right at shutdown cannot slip between its
	// wg.Add and the main goroutine's wg.Wait.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed (shutdown) or fatal accept error
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := protocol.ServeConn(connCtx, conn, srv); err != nil {
					log.Printf("session: %v", err)
				}
				_ = conn.Close()
				allocs, merges := srv.Stats()
				fmt.Fprintf(os.Stderr, "coca-server: connection done (open sessions %d, total allocations %d, merges %d)\n",
					srv.Sessions(), allocs, merges)
			}()
		}
	}()

	<-sigCtx.Done()
	fmt.Fprintf(os.Stderr, "coca-server: shutting down: draining %d open session(s) for up to %s...\n",
		srv.Sessions(), *drain)
	_ = l.Close() // stop accepting

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drain):
		fmt.Fprintln(os.Stderr, "coca-server: drain window elapsed; closing remaining connections")
		cancelConns()
		<-drained
	}
	allocs, merges := srv.Stats()
	fmt.Fprintf(os.Stderr, "coca-server: shut down cleanly (total allocations %d, merges %d)\n", allocs, merges)
}
