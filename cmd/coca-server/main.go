// Command coca-server runs a CoCa edge server over TCP: it builds the
// simulated model/dataset universe, initializes the global cache table from
// the shared dataset, and serves cache allocation and global-update
// requests from coca-client processes.
//
// Usage:
//
//	coca-server -addr :7070 -model ResNet101 -dataset UCF101 -classes 50 -theta 0.012
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":7070", "listen address")
		modelN  = flag.String("model", "ResNet101", "model preset (VGG16_BN, ResNet50, ResNet101, ResNet152, AST)")
		dataN   = flag.String("dataset", "UCF101", "dataset preset (ImageNet-100, UCF101, ESC-50)")
		classes = flag.Int("classes", 0, "restrict the dataset to its first N classes (0 = all)")
		theta   = flag.Float64("theta", 0.012, "hit threshold Θ used for layer profiling")
		gamma   = flag.Float64("gamma", 0.99, "global merge decay γ (Eq. 4)")
		seed    = flag.Uint64("seed", 1, "shared-dataset seed")
	)
	flag.Parse()

	arch, err := model.ByName(*modelN)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*dataN)
	if err != nil {
		log.Fatal(err)
	}
	if *classes > 0 {
		ds = ds.Subset(*classes)
	}
	fmt.Fprintf(os.Stderr, "coca-server: building %s × %s universe...\n", arch.Name, ds.Name)
	space := semantics.NewSpace(ds, arch)
	srv := core.NewServer(space, core.ServerConfig{Theta: *theta, Gamma: *gamma, Seed: *seed})

	l, err := transport.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "coca-server: %s × %s (%d classes, %d cache sites) listening on %s\n",
		arch.Name, ds.Name, ds.NumClasses, arch.NumLayers, l.Addr())

	for {
		conn, err := l.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go func() {
			if err := protocol.ServeConn(conn, srv); err != nil {
				log.Printf("session: %v", err)
			}
			_ = conn.Close()
			allocs, merges := srv.Stats()
			fmt.Fprintf(os.Stderr, "coca-server: session done (total allocations %d, merges %d)\n", allocs, merges)
		}()
	}
}
