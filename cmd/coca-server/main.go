// Command coca-server runs a CoCa edge server over TCP: it builds the
// simulated model/dataset universe, initializes the global cache table from
// the shared dataset, and serves session, cache-allocation and
// global-update requests from coca-client processes (wire protocol v3
// with per-request deadline propagation, negotiated down for v2 and v1
// clients).
//
// With -peers, the server joins a federation: it gossips global-cache
// cell deltas to the listed peer servers every -sync interval and merges
// the deltas they push, so classes cached by another server's clients
// accelerate this server's clients too. Every fleet member must run the
// same -model/-dataset/-classes/-seed (the shared dataset aligning their
// initial tables) and a distinct -node-id.
//
// The fleet is elastic: with -join, a server started mid-run announces
// itself to the listed peers and bootstraps its table from a snapshot
// (everything the fleet learned since construction, shipped as one batch)
// instead of replaying sync history, and established members learn the
// joiner's address and push back without reconfiguration. A per-peer
// failure detector (-suspect-after / -dead-after consecutive failures)
// keeps sync from stalling on crashed peers; -gossip N switches each sync
// round to an epidemic push toward N sampled peers instead of all of
// them.
//
// On SIGINT/SIGTERM the server shuts down gracefully: it announces a
// clean leave to live peers (so they mark it left immediately rather than
// waiting out the suspect timeout), stops accepting new connections, lets
// in-flight sessions drain for up to -drain-timeout, then closes the
// remaining connections, prints its final counters (allocations, merges,
// sessions, peer-sync traffic with a per-peer breakdown) and exits.
// Sessions that finish inside the window count as drained, the
// force-closed remainder as aborted (coca_overload_drain_sessions_total
// in /metrics).
//
// Live observability: -metrics serves the process-wide telemetry registry
// (per-tier counters, gauges and histograms — cache hits, sync bytes,
// membership states, session/allocation counts) in Prometheus text format
// at /metrics; when -metrics and -pprof name the same address one listener
// serves both. -trace appends timestamped JSON-lines lifecycle events
// (session open/close, peer sync exchanges, membership transitions) to a
// file. The graceful-shutdown stats dump reads the same telemetry
// snapshot the /metrics page is rendered from, so the two can never
// disagree.
//
// Usage:
//
//	coca-server -addr :7070 -model ResNet101 -dataset UCF101 -classes 50 -theta 0.012
//	coca-server -addr :7071 -node-id 1 -peers 127.0.0.1:7070,127.0.0.1:7072 -sync 5s
//	coca-server -addr :7072 -node-id 2 -peers 127.0.0.1:7070 -join -sync 5s
//	coca-server -addr :7070 -pprof localhost:6060 -metrics localhost:6060 -trace events.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/federation"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/telemetry"
	"coca/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", ":7070", "listen address")
		modelN   = flag.String("model", "ResNet101", "model preset (VGG16_BN, ResNet50, ResNet101, ResNet152, AST)")
		dataN    = flag.String("dataset", "UCF101", "dataset preset (ImageNet-100, UCF101, ESC-50)")
		classes  = flag.Int("classes", 0, "restrict the dataset to its first N classes (0 = all)")
		theta    = flag.Float64("theta", 0.012, "hit threshold Θ used for layer profiling")
		gamma    = flag.Float64("gamma", 0.99, "global merge decay γ (Eq. 4)")
		seed     = flag.Uint64("seed", 1, "shared-dataset seed")
		drainTO  = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown bound: in-flight sessions get this long to drain before being force-closed")
		drainOld = flag.Duration("drain", 0, "deprecated alias for -drain-timeout")
		peersF   = flag.String("peers", "", "comma-separated federated peer server addresses (host:port,...)")
		nodeID   = flag.Int("node-id", 0, "this server's federation id (distinct per fleet member)")
		relay    = flag.Bool("relay", false, "relay received peer evidence onward (set on star hubs / ring members; leave off in a full mesh)")
		syncInt  = flag.Duration("sync", 5*time.Second, "federation peer-sync cadence (with -peers)")
		join     = flag.Bool("join", false, "announce this server to the fleet and bootstrap from a peer snapshot (elastic join; with -peers)")
		gossip   = flag.Int("gossip", 0, "gossip fanout: push each sync round to N sampled peers instead of all (0 = all)")
		suspect  = flag.Int("suspect-after", 0, "consecutive sync failures before a peer is suspect (0 = default 2)")
		dead     = flag.Int("dead-after", 0, "consecutive sync failures before a peer is dead and skipped (0 = default 5)")
		antiEnt  = flag.Duration("anti-entropy", 0, "pull anti-entropy cadence: periodically reconcile ledgers with one sampled peer via digests (with -peers; 0 = off)")
		pprofA   = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		metricsA = flag.String("metrics", "", "expose Prometheus /metrics on this address (may equal -pprof to share one listener; empty = off)")
		traceF   = flag.String("trace", "", "append JSON-lines telemetry events (sessions, syncs, membership) to this file (empty = off)")
	)
	flag.Parse()
	drain := *drainTO
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "drain" && *drainOld > 0 {
			drain = *drainOld // deprecated alias; -drain-timeout wins when both are set
		}
		if f.Name == "drain-timeout" {
			drain = *drainTO
		}
	})

	if *metricsA != "" && *metricsA == *pprofA {
		// Shared diagnostics listener: pprof registers on the default
		// mux at import time, so /metrics joins it there and the single
		// server below serves both.
		http.Handle("/metrics", telemetry.Handler())
	}
	if *pprofA != "" {
		// Diagnostics only: profiles of the serving hot path are taken
		// live (go tool pprof http://<addr>/debug/pprof/profile) without
		// touching the coordination sockets or redeploying.
		go func() {
			fmt.Fprintf(os.Stderr, "coca-server: pprof on http://%s/debug/pprof/\n", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	if *metricsA != "" && *metricsA != *pprofA {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler())
		go func() {
			fmt.Fprintf(os.Stderr, "coca-server: metrics on http://%s/metrics\n", *metricsA)
			if err := http.ListenAndServe(*metricsA, mux); err != nil {
				log.Printf("metrics: %v", err)
			}
		}()
	}
	if *traceF != "" {
		f, err := os.OpenFile(*traceF, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		telemetry.SetTracer(telemetry.NewTracer(f))
		defer func() {
			telemetry.SetTracer(nil)
			_ = f.Close()
		}()
		fmt.Fprintf(os.Stderr, "coca-server: tracing events to %s\n", *traceF)
	}

	arch, err := model.ByName(*modelN)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.ByName(*dataN)
	if err != nil {
		log.Fatal(err)
	}
	if *classes > 0 {
		ds = ds.Subset(*classes)
	}
	fmt.Fprintf(os.Stderr, "coca-server: building %s × %s universe...\n", arch.Name, ds.Name)
	space := semantics.NewSpace(ds, arch)
	srv := core.NewServer(space, core.ServerConfig{Theta: *theta, Gamma: *gamma, Seed: *seed})
	node := federation.NewNode(srv, federation.NodeConfig{
		ID: *nodeID, Relay: *relay,
		Membership: federation.MembershipConfig{SuspectAfter: *suspect, DeadAfter: *dead},
	})

	var peerAddrs []string
	for _, a := range strings.Split(*peersF, ",") {
		if a = strings.TrimSpace(a); a != "" {
			peerAddrs = append(peerAddrs, a)
		}
	}

	l, err := transport.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "coca-server: %s × %s (%d classes, %d cache sites) listening on %s\n",
		arch.Name, ds.Name, ds.NumClasses, arch.NumLayers, l.Addr())
	if len(peerAddrs) > 0 {
		fmt.Fprintf(os.Stderr, "coca-server: federation node %d syncing with %d peer(s) every %s\n",
			*nodeID, len(peerAddrs), *syncInt)
	}

	// Shutdown plumbing: the signal cancels sigCtx; connCtx stays open
	// through the drain window so in-flight sessions can finish their
	// round trips, then its cancellation force-closes the stragglers.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	connCtx, cancelConns := context.WithCancel(context.Background())
	defer cancelConns()

	// The accept loop itself is counted in the WaitGroup so that a
	// connection accepted right at shutdown cannot slip between its
	// wg.Add and the main goroutine's wg.Wait.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed (shutdown) or fatal accept error
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := protocol.ServeConn(connCtx, conn, node); err != nil {
					log.Printf("session: %v", err)
				}
				_ = conn.Close()
				allocs, merges := srv.Stats()
				fmt.Fprintf(os.Stderr, "coca-server: connection done (open sessions %d, total allocations %d, merges %d)\n",
					srv.Sessions(), allocs, merges)
			}()
		}
	}()

	// The peer-sync loop runs on its own context, canceled right after the
	// clean-leave announcement so the drain window is spent on sessions,
	// not gossip.
	var peerWg sync.WaitGroup
	var peers *federation.PeerSet
	peerCtx, cancelPeers := context.WithCancel(context.Background())
	defer cancelPeers()
	if len(peerAddrs) > 0 || *join {
		peers = federation.NewPeerSetWith(node, peerAddrs, federation.PeerSetConfig{
			Join:        *join,
			SelfAddr:    l.Addr(),
			Fanout:      *gossip,
			Seed:        *seed,
			AntiEntropy: *antiEnt,
		})
		peerWg.Add(1)
		go func() {
			defer peerWg.Done()
			peers.Run(peerCtx, *syncInt, func(err error) { log.Printf("peer sync: %v", err) })
		}()
	}

	<-sigCtx.Done()
	atShutdown := srv.Sessions()
	fmt.Fprintf(os.Stderr, "coca-server: shutting down: draining %d open session(s) for up to %s...\n",
		atShutdown, drain)
	if peers != nil {
		// Announce the departure while the links are still up: surviving
		// peers mark this node left immediately instead of waiting out the
		// suspect timeout.
		peers.AnnounceLeave()
	}
	cancelPeers()
	peerWg.Wait()
	_ = l.Close() // stop accepting

	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
		telemetry.OverloadDrains.Add(telemetry.DrainDrained, uint64(atShutdown))
	case <-time.After(drain):
		// Sessions that beat the deadline drained; the stragglers are
		// force-closed and counted aborted — the bounded-drain contract.
		aborted := srv.Sessions()
		telemetry.OverloadDrains.Add(telemetry.DrainAborted, uint64(aborted))
		if n := atShutdown - aborted; n > 0 {
			telemetry.OverloadDrains.Add(telemetry.DrainDrained, uint64(n))
		}
		fmt.Fprintf(os.Stderr, "coca-server: drain deadline elapsed; closing %d remaining connection(s)\n", aborted)
		cancelConns()
		<-drained
	}
	printFinalStats(node)
}

// printFinalStats renders the server's counters on graceful shutdown —
// the numbers a multi-server run is debugged from. The counters come
// from the same telemetry snapshot the live /metrics page renders, so
// the shutdown report and a final scrape can never disagree; only the
// per-peer breakdown and last-error detail (not exposed as series) read
// from the node directly.
func printFinalStats(node *federation.Node) {
	snap := telemetry.Snapshot()
	count := func(name string) int64 { return int64(snap.Value(name)) }
	sync := node.Stats()
	fmt.Fprintln(os.Stderr, "coca-server: shut down cleanly; final stats:")
	fmt.Fprintf(os.Stderr, "  allocations      %d\n", count("coca_core_allocations_total"))
	fmt.Fprintf(os.Stderr, "  merges           %d\n", count("coca_core_upload_merges_total"))
	fmt.Fprintf(os.Stderr, "  peer merges      %d\n", count("coca_core_peer_merges_total"))
	fmt.Fprintf(os.Stderr, "  open sessions    %d\n", count("coca_core_sessions_open"))
	fmt.Fprintf(os.Stderr, "  peer syncs       %d\n", count("coca_federation_syncs_total"))
	fmt.Fprintf(os.Stderr, "  peer cells sent  %d (%.1f KiB)\n",
		count("coca_federation_cells_sent_total"), snap.Value("coca_federation_sync_bytes_sent_total")/1024)
	fmt.Fprintf(os.Stderr, "  peer cells recv  %d (%.1f KiB)\n",
		count("coca_federation_cells_recv_total"), snap.Value("coca_federation_sync_bytes_recv_total")/1024)
	if d, a := telemetry.OverloadDrains.Load(telemetry.DrainDrained), telemetry.OverloadDrains.Load(telemetry.DrainAborted); d+a > 0 {
		fmt.Fprintf(os.Stderr, "  drain            %d drained, %d aborted\n", d, a)
	}
	if sync.Errors > 0 {
		fmt.Fprintf(os.Stderr, "  peer sync errors %d (last: %s)\n", sync.Errors, sync.LastError)
	}
	for _, p := range sync.Peers {
		fmt.Fprintf(os.Stderr, "  peer %-4d %-7s addr=%s syncs=%d last-epoch=%d sent=%d resent=%d recv=%d joins=%d\n",
			p.ID, p.State, orDash(p.Addr), p.Syncs, p.LastSyncEpoch, p.CellsSent, p.CellsResent, p.CellsRecv, p.Joins)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
