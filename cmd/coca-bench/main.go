// Command coca-bench regenerates the paper's tables and figures on the
// simulated substrate and prints them in paper-style layout.
//
// Usage:
//
//	coca-bench -list
//	coca-bench -exp table2
//	coca-bench -exp all -scale 0.5 -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"coca/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (fig1a..fig10b, table1..table3) or \"all\"")
		scale = flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
		seed  = flag.Uint64("seed", 1, "workload seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n           shape: %s\n", e.ID, e.Title, e.Shape)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var targets []experiments.Experiment
	if *exp == "all" {
		targets = experiments.Registry()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			log.Fatal(err)
		}
		targets = []experiments.Experiment{e}
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	for _, e := range targets {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		if *csv {
			fmt.Print(res.Table.CSV())
		} else {
			fmt.Print(res.Table.String())
		}
		fmt.Fprintf(os.Stderr, "# %s completed in %.1fs\n\n", e.ID, time.Since(start).Seconds())
	}
}
