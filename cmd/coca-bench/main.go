// Command coca-bench regenerates the paper's tables and figures on the
// simulated substrate, and measures this build's performance into a
// machine-readable report.
//
// Usage:
//
//	coca-bench -list
//	coca-bench -exp table2
//	coca-bench -exp all -scale 0.5 -csv
//	coca-bench -exp table2 -batch 32
//	coca-bench -bench
//	coca-bench -bench -json -out . -benchtime 1x
//	coca-bench -compare BENCH_old.json BENCH_new.json
//	coca-bench -exp table2 -cpuprofile cpu.out -memprofile mem.out
//
// -list enumerates the experiment registry (the happy path when exploring).
// -exp runs one experiment (or "all") and prints its paper-style table;
// -batch drives CoCa clients through the batched round driver. -bench runs
// the headline + server/inference hot-path benchmark suite; with -json it
// also writes a versioned BENCH_<date>.json (schema internal/perfjson)
// whose committed history is the repository's perf trajectory (see
// EXPERIMENTS.md). -compare diffs two BENCH files and exits non-zero when
// a zero-alloc benchmark regressed by more than 20% allocs/op — the CI
// bench-smoke gate. -cpuprofile/-memprofile write pprof profiles of any
// mode, so hot-path regressions are diagnosed without code edits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"coca/internal/benchsuite"
	"coca/internal/experiments"
	"coca/internal/perfjson"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (fig1a..fig10b, table1..table3) or \"all\"")
		scale      = flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list       = flag.Bool("list", false, "list experiments and exit")
		batch      = flag.Int("batch", 0, "inference batch size for the round driver (0 = frame at a time)")
		bench      = flag.Bool("bench", false, "run the headline + hot-path benchmark suite")
		jsonOut    = flag.Bool("json", false, "with -bench: write BENCH_<date>.json")
		outDir     = flag.String("out", ".", "with -bench -json: directory for the report")
		benchTime  = flag.String("benchtime", "", "with -bench: per-benchmark budget, e.g. 2s or 1x (default 1s)")
		compare    = flag.Bool("compare", false, "compare two BENCH_<date>.json files (old new); non-zero exit on zero-alloc regression >20%")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	testing.Init() // register test.* flags so -benchtime can be forwarded
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	// Dispatch returns instead of exiting so the deferred profile flushes
	// above run even on failure — the failing run is exactly the one worth
	// profiling. log.Fatal would os.Exit past them.
	var runErr error
	exitCode := 1
	switch {
	case *compare:
		if flag.NArg() != 2 {
			runErr = fmt.Errorf("usage: coca-bench -compare BENCH_old.json BENCH_new.json")
			break
		}
		runErr = runCompare(flag.Arg(0), flag.Arg(1))
	case *bench:
		runErr = runBench(*benchTime, *jsonOut, *outDir)
	case *list:
		printRegistry(os.Stdout)
	case *exp == "":
		fmt.Fprintln(os.Stderr, "coca-bench: no experiment selected")
		fmt.Fprintln(os.Stderr, "usage: coca-bench -list | -exp <id|all> [-scale f] [-seed n] [-batch n] [-csv] | -bench [-json] | -compare old.json new.json")
		fmt.Fprintln(os.Stderr, "run coca-bench -list to see the experiment registry")
		runErr = fmt.Errorf("no mode selected")
		exitCode = 2
	default:
		runErr = runExperiments(*exp, experiments.Options{Scale: *scale, Seed: *seed, BatchSize: *batch}, *csv)
	}
	if runErr != nil {
		log.Print(runErr)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			if f, err := os.Create(*memProfile); err == nil {
				runtime.GC()
				_ = pprof.WriteHeapProfile(f)
				f.Close()
			}
		}
		os.Exit(exitCode)
	}
}

func printRegistry(w *os.File) {
	fmt.Fprintln(w, "available experiments:")
	for _, e := range experiments.Registry() {
		fmt.Fprintf(w, "  %-8s %s\n           shape: %s\n", e.ID, e.Title, e.Shape)
	}
}

func runExperiments(id string, opts experiments.Options, csv bool) error {
	var targets []experiments.Experiment
	if id == "all" {
		targets = experiments.Registry()
	} else {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		targets = []experiments.Experiment{e}
	}
	for _, e := range targets {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if csv {
			fmt.Print(res.Table.CSV())
		} else {
			fmt.Print(res.Table.String())
		}
		fmt.Fprintf(os.Stderr, "# %s completed in %.1fs\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

// namedBench pairs a report name with a runnable benchmark body.
type namedBench struct {
	name string
	run  func(*testing.B)
}

// suite is the fixed benchmark set of -bench mode: the headline
// reproduction plus the inference hot path across scales and batch sizes.
func suite() []namedBench {
	out := []namedBench{
		{"headline", benchsuite.Headline},
		{"federation", benchsuite.Federation},
		{"federation-sync-round", benchsuite.FederationSync},
		{"gossip-sync-round", benchsuite.GossipSync},
		{"anti-entropy-round", benchsuite.AntiEntropyRound},
		{"routing-admission", benchsuite.RoutingAdmission},
		{"routing-admission-shed", benchsuite.RoutingAdmissionShed},
		{"telemetry-record", benchsuite.TelemetryRecord},
	}
	for _, clients := range []int{1, 16} {
		out = append(out,
			namedBench{
				fmt.Sprintf("server-path/allocate/clients=%d", clients),
				func(b *testing.B) { benchsuite.ServerPath(b, clients, false) },
			},
			namedBench{
				fmt.Sprintf("server-path/round/clients=%d", clients),
				func(b *testing.B) { benchsuite.ServerPath(b, clients, true) },
			})
	}
	// The parallel-scaling fleet-round bench: the last entry always runs
	// at GOMAXPROCS but keeps the machine-independent name "max" so
	// committed BENCH files stay comparable across hosts.
	ercs := benchsuite.EngineRoundClients()
	for i, clients := range ercs {
		name := fmt.Sprintf("engine-round/clients=%d", clients)
		if i == len(ercs)-1 {
			name = "engine-round/clients=max"
		}
		out = append(out, namedBench{name, func(b *testing.B) { benchsuite.EngineRound(b, clients) }})
	}
	for _, scale := range []benchsuite.Scale{benchsuite.ScaleRef, benchsuite.ScaleFleet} {
		for _, batch := range []int{1, 8, 32} {
			out = append(out, namedBench{
				fmt.Sprintf("inference-path/scale=%s/batch=%d", scale, batch),
				func(b *testing.B) { benchsuite.InferencePath(b, scale, batch) },
			})
		}
	}
	return out
}

func runBench(benchTime string, jsonOut bool, outDir string) error {
	if benchTime != "" {
		if err := flag.Set("test.benchtime", benchTime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}
	report := &perfjson.Report{
		Schema:    perfjson.SchemaVersion,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	// ns/op of the batch=1 runs, for derived speedup metrics.
	base := map[string]float64{}
	for _, bm := range suite() {
		res := testing.Benchmark(bm.run)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", bm.name)
		}
		entry := perfjson.Benchmark{
			Name:        bm.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		}
		if len(res.Extra) > 0 {
			entry.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				entry.Metrics[k] = v
			}
		}
		if scale, batch, ok := parseInferenceName(bm.name); ok {
			if batch == 1 {
				base[scale] = entry.NsPerOp
			} else if b1 := base[scale]; b1 > 0 && entry.NsPerOp > 0 {
				if entry.Metrics == nil {
					entry.Metrics = map[string]float64{}
				}
				entry.Metrics["speedup-vs-batch=1"] = b1 / entry.NsPerOp
			}
		}
		report.Add(entry)
		fmt.Printf("%-36s %12.0f ns/op %8.1f allocs/op", bm.name, entry.NsPerOp, entry.AllocsPerOp)
		keys := make([]string, 0, len(entry.Metrics))
		for k := range entry.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%.2f", k, entry.Metrics[k])
		}
		fmt.Println()
	}
	if jsonOut {
		path, err := report.WriteFile(outDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
	}
	return nil
}

// parseInferenceName extracts (scale, batch) from an inference-path
// benchmark name.
func parseInferenceName(name string) (string, int, bool) {
	rest, ok := strings.CutPrefix(name, "inference-path/scale=")
	if !ok {
		return "", 0, false
	}
	scale, batchPart, ok := strings.Cut(rest, "/batch=")
	if !ok {
		return "", 0, false
	}
	batch, err := strconv.Atoi(batchPart)
	if err != nil {
		return "", 0, false
	}
	return scale, batch, true
}

// allocRegressionTolerance is the CI gate: a zero-alloc benchmark may not
// regress its allocs/op by more than this fraction (plus one allocation of
// absolute slack; see perfjson.BenchDelta.AllocRegression).
const allocRegressionTolerance = 0.20

// Time-regression gate: a benchmark may not regress its ns/op by more
// than this ratio plus the absolute slack (see
// perfjson.BenchDelta.TimeRegression). The committed BENCH baselines and
// CI runners are different machines, and the concurrent benches jitter
// up to ~1.7× run-to-run even on one machine, so the ratio is generous —
// the gate catches algorithmic wall-clock regressions (the >2× class:
// lost staging, accidental quadratics), not micro-drift — and the slack
// keeps sub-millisecond benchmarks from tripping on scheduler noise.
const (
	timeRegressionTolerance = 1.0
	timeRegressionSlackNs   = 250e3 // 250µs
)

// runCompare diffs two BENCH reports, prints every benchmark's movement
// and fails (non-zero exit via error) when any zero-alloc benchmark
// regressed its allocation profile beyond the tolerance, or any benchmark
// regressed its wall clock beyond the time gate.
func runCompare(oldPath, newPath string) error {
	oldRep, err := perfjson.Load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := perfjson.Load(newPath)
	if err != nil {
		return err
	}
	var regressions []string
	for _, d := range perfjson.Delta(oldRep, newRep) {
		status := "new"
		if d.Known {
			status = fmt.Sprintf("%.2fx ns", d.Speedup)
		}
		fmt.Printf("%-40s %12.0f -> %12.0f ns/op  %10.1f -> %10.1f allocs/op  %s\n",
			d.Name, d.OldNs, d.NewNs, d.OldAllocs, d.NewAllocs, status)
		if d.AllocRegression(allocRegressionTolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.1f -> %.1f (> %.0f%% over a zero-alloc baseline)",
					d.Name, d.OldAllocs, d.NewAllocs, 100*allocRegressionTolerance))
		}
		if d.TimeRegression(timeRegressionTolerance, timeRegressionSlackNs) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (> %.0f%% + %.0fµs slack)",
					d.Name, d.OldNs, d.NewNs, 100*timeRegressionTolerance, timeRegressionSlackNs/1e3))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance regressions:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Println("no zero-alloc or wall-clock regressions")
	return nil
}
