// Command coca-bench regenerates the paper's tables and figures on the
// simulated substrate, and measures this build's performance into a
// machine-readable report.
//
// Usage:
//
//	coca-bench -list
//	coca-bench -exp table2
//	coca-bench -exp all -scale 0.5 -csv
//	coca-bench -exp table2 -batch 32
//	coca-bench -bench
//	coca-bench -bench -json -out . -benchtime 1x
//
// -list enumerates the experiment registry (the happy path when exploring).
// -exp runs one experiment (or "all") and prints its paper-style table;
// -batch drives CoCa clients through the batched round driver. -bench runs
// the headline + inference hot-path benchmark suite; with -json it also
// writes a versioned BENCH_<date>.json (schema internal/perfjson) whose
// committed history is the repository's perf trajectory (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"coca/internal/benchsuite"
	"coca/internal/experiments"
	"coca/internal/perfjson"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (fig1a..fig10b, table1..table3) or \"all\"")
		scale     = flag.Float64("scale", 1.0, "run-length scale (1.0 = full experiment)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list      = flag.Bool("list", false, "list experiments and exit")
		batch     = flag.Int("batch", 0, "inference batch size for the round driver (0 = frame at a time)")
		bench     = flag.Bool("bench", false, "run the headline + hot-path benchmark suite")
		jsonOut   = flag.Bool("json", false, "with -bench: write BENCH_<date>.json")
		outDir    = flag.String("out", ".", "with -bench -json: directory for the report")
		benchTime = flag.String("benchtime", "", "with -bench: per-benchmark budget, e.g. 2s or 1x (default 1s)")
	)
	testing.Init() // register test.* flags so -benchtime can be forwarded
	flag.Parse()

	switch {
	case *bench:
		if err := runBench(*benchTime, *jsonOut, *outDir); err != nil {
			log.Fatal(err)
		}
	case *list:
		printRegistry(os.Stdout)
	case *exp == "":
		fmt.Fprintln(os.Stderr, "coca-bench: no experiment selected")
		fmt.Fprintln(os.Stderr, "usage: coca-bench -list | -exp <id|all> [-scale f] [-seed n] [-batch n] [-csv] | -bench [-json]")
		fmt.Fprintln(os.Stderr, "run coca-bench -list to see the experiment registry")
		os.Exit(2)
	default:
		if err := runExperiments(*exp, experiments.Options{Scale: *scale, Seed: *seed, BatchSize: *batch}, *csv); err != nil {
			log.Fatal(err)
		}
	}
}

func printRegistry(w *os.File) {
	fmt.Fprintln(w, "available experiments:")
	for _, e := range experiments.Registry() {
		fmt.Fprintf(w, "  %-8s %s\n           shape: %s\n", e.ID, e.Title, e.Shape)
	}
}

func runExperiments(id string, opts experiments.Options, csv bool) error {
	var targets []experiments.Experiment
	if id == "all" {
		targets = experiments.Registry()
	} else {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		targets = []experiments.Experiment{e}
	}
	for _, e := range targets {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if csv {
			fmt.Print(res.Table.CSV())
		} else {
			fmt.Print(res.Table.String())
		}
		fmt.Fprintf(os.Stderr, "# %s completed in %.1fs\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

// namedBench pairs a report name with a runnable benchmark body.
type namedBench struct {
	name string
	run  func(*testing.B)
}

// suite is the fixed benchmark set of -bench mode: the headline
// reproduction plus the inference hot path across scales and batch sizes.
func suite() []namedBench {
	out := []namedBench{
		{"headline", benchsuite.Headline},
		{"federation", benchsuite.Federation},
	}
	for _, scale := range []benchsuite.Scale{benchsuite.ScaleRef, benchsuite.ScaleFleet} {
		for _, batch := range []int{1, 8, 32} {
			out = append(out, namedBench{
				fmt.Sprintf("inference-path/scale=%s/batch=%d", scale, batch),
				func(b *testing.B) { benchsuite.InferencePath(b, scale, batch) },
			})
		}
	}
	return out
}

func runBench(benchTime string, jsonOut bool, outDir string) error {
	if benchTime != "" {
		if err := flag.Set("test.benchtime", benchTime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}
	report := &perfjson.Report{
		Schema:    perfjson.SchemaVersion,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	// ns/op of the batch=1 runs, for derived speedup metrics.
	base := map[string]float64{}
	for _, bm := range suite() {
		res := testing.Benchmark(bm.run)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", bm.name)
		}
		entry := perfjson.Benchmark{
			Name:        bm.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		}
		if len(res.Extra) > 0 {
			entry.Metrics = map[string]float64{}
			for k, v := range res.Extra {
				entry.Metrics[k] = v
			}
		}
		if scale, batch, ok := parseInferenceName(bm.name); ok {
			if batch == 1 {
				base[scale] = entry.NsPerOp
			} else if b1 := base[scale]; b1 > 0 && entry.NsPerOp > 0 {
				if entry.Metrics == nil {
					entry.Metrics = map[string]float64{}
				}
				entry.Metrics["speedup-vs-batch=1"] = b1 / entry.NsPerOp
			}
		}
		report.Add(entry)
		fmt.Printf("%-36s %12.0f ns/op %8.1f allocs/op", bm.name, entry.NsPerOp, entry.AllocsPerOp)
		keys := make([]string, 0, len(entry.Metrics))
		for k := range entry.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%.2f", k, entry.Metrics[k])
		}
		fmt.Println()
	}
	if jsonOut {
		path, err := report.WriteFile(outDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# wrote %s\n", path)
	}
	return nil
}

// parseInferenceName extracts (scale, batch) from an inference-path
// benchmark name.
func parseInferenceName(name string) (string, int, bool) {
	rest, ok := strings.CutPrefix(name, "inference-path/scale=")
	if !ok {
		return "", 0, false
	}
	scale, batchPart, ok := strings.Cut(rest, "/batch=")
	if !ok {
		return "", 0, false
	}
	batch, err := strconv.Atoi(batchPart)
	if err != nil {
		return "", 0, false
	}
	return scale, batch, true
}
