// Network fleet via the public serving API: coca.Serve starts a
// session-serving edge server on loopback, coca.Dial connects each fleet
// client, and the clients run their rounds concurrently — the v2 delta
// protocol end to end with no internal imports.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"coca"
)

func main() {
	ctx := context.Background()
	opts := coca.Options{
		Model: "ResNet50", Dataset: "UCF101", Classes: 20,
		NumClients: 3, Rounds: 4, RoundFrames: 100, Budget: 80, Seed: 2,
	}

	srv, clients, err := coca.ServeAndDial(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netfleet: serving on %s, %d clients connected\n", srv.Addr(), len(clients))

	var wg sync.WaitGroup
	for id, cl := range clients {
		wg.Add(1)
		go func(id int, cl *coca.Client) {
			defer wg.Done()
			rep, err := cl.Run(ctx, 0)
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			fmt.Printf("client %d: %s (cache view v%d)\n", id, rep, cl.ViewVersion())
		}(id, cl)
	}
	wg.Wait()

	for _, cl := range clients {
		_ = cl.Close()
	}
	allocs, merges, sessions := srv.Stats()
	fmt.Printf("server: %d allocations, %d merges, %d open sessions\n", allocs, merges, sessions)

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("netfleet: server shut down cleanly")
}
