// Network fleet via the public serving API: coca.Serve starts a
// session-serving edge server on loopback, coca.Dial connects each fleet
// client, and the clients run their rounds concurrently — the v2 delta
// protocol end to end with no internal imports. Afterwards a second
// server joins elastically (Options.Federation with Join set): it
// bootstraps everything the first server learned from one snapshot
// instead of replaying history, without the first server being
// reconfigured.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"coca"
)

func main() {
	ctx := context.Background()
	opts := coca.Options{
		Model: "ResNet50", Dataset: "UCF101", Classes: 20,
		NumClients: 3, Rounds: 4, RoundFrames: 100, Budget: 80, Seed: 2,
	}

	srv, clients, err := coca.ServeAndDial(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netfleet: serving on %s, %d clients connected\n", srv.Addr(), len(clients))

	var wg sync.WaitGroup
	for id, cl := range clients {
		wg.Add(1)
		go func(id int, cl *coca.Client) {
			defer wg.Done()
			rep, err := cl.Run(ctx, 0)
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			fmt.Printf("client %d: %s (cache view v%d)\n", id, rep, cl.ViewVersion())
		}(id, cl)
	}
	wg.Wait()

	for _, cl := range clients {
		_ = cl.Close()
	}
	allocs, merges, sessions := srv.Stats()
	fmt.Printf("server: %d allocations, %d merges, %d open sessions\n", allocs, merges, sessions)

	// Elastic join: a fresh server enters the fleet after the fact and
	// catches up from a snapshot — the whole run's learning in one batch.
	lateOpts := opts
	lateOpts.Federation = &coca.FederationOptions{
		NodeID: 1, Peers: []string{srv.Addr()},
		Join: true, SyncInterval: 20 * time.Millisecond,
	}
	late, err := coca.Serve(ctx, "127.0.0.1:0", lateOpts)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // a few sync ticks: join + snapshot land
	st := late.SyncStats()
	fmt.Printf("late joiner: bootstrapped %d cells (%.1f KiB) via snapshot\n",
		st.CellsRecv, float64(st.BytesRecv)/1024)
	for _, p := range late.PeerStats() {
		fmt.Printf("  peer %d: %s, %d syncs\n", p.ID, p.State, p.Syncs)
	}

	for i, s := range []*coca.Server{late, srv} {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown %d: %v", i, err)
		}
		cancel()
	}
	fmt.Println("netfleet: fleet shut down cleanly")
}
