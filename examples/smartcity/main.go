// Smart-city surveillance: twelve non-IID cameras (intersections, parks,
// transit stops each see very different class mixes) sharing one edge
// server. The cross-client global cache is what makes the skewed cameras
// benefit from each other — the motivating scenario of the paper's
// introduction.
package main

import (
	"fmt"
	"log"

	"coca"
)

func main() {
	fmt.Println("smart-city surveillance: 12 heterogeneous cameras, ResNet101, UCF101-100")

	for _, p := range []float64{0, 2, 10} {
		sys, err := coca.NewSystem(coca.Options{
			Model:   "ResNet101",
			Dataset: "UCF101",
			Classes: 100,

			NumClients:   12,
			Rounds:       6,
			WarmupRounds: 1,

			NonIIDLevel: p,
			LongTailRho: 30,

			// Cameras differ in optics and mounting: per-client bias.
			ClientBias: 0.05,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("non-IID p=%-2.0f  %.2f ms (−%.1f%%)  accuracy %.2f%%  hits %.1f%%\n",
			p, report.AvgLatencyMs, 100*report.LatencyReduction(),
			100*report.Accuracy, 100*report.HitRatio)
	}
	fmt.Println("more heterogeneous fleets concentrate each camera's classes — caching gets better, not worse")
}
