// Acoustic monitoring over a real network: an AST (Audio Spectrogram
// Transformer) fleet classifying environmental sound (ESC-50), with the
// CoCa server and clients talking over TCP loopback — the deployment shape
// of cmd/coca-server and cmd/coca-client, self-contained in one process.
package main

import (
	"context"
	"fmt"
	"log"

	"coca/internal/core"
	"coca/internal/dataset"
	"coca/internal/metrics"
	"coca/internal/model"
	"coca/internal/protocol"
	"coca/internal/semantics"
	"coca/internal/stream"
	"coca/internal/transport"
)

func main() {
	ds := dataset.ESC50()
	arch := model.ASTBase()
	fmt.Printf("acoustic monitoring: %s × %s over TCP, 3 sensors\n", arch.Name, ds.Name)
	space := semantics.NewSpace(ds, arch)
	srv := core.NewServer(space, core.ServerConfig{Theta: 0.022, Seed: 5})

	ctx := context.Background()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _ = protocol.ServeConn(ctx, conn, srv); _ = conn.Close() }()
		}
	}()

	part, err := stream.NewPartition(stream.Config{
		Dataset: ds, NumClients: 3, NonIIDLevel: 2,
		SceneMeanFrames: 30, WorkingSetSize: 10, WorkingSetChurn: 0.05, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	for id := 0; id < 3; id++ {
		conn, err := transport.DialContext(ctx, l.Addr())
		if err != nil {
			log.Fatal(err)
		}
		coord := protocol.NewSessionClient(conn, ds.NumClasses, arch.NumLayers)
		client, err := core.NewClient(ctx, space, coord, core.ClientConfig{
			ID: id, Theta: 0.022, Budget: 200, RoundFrames: 150,
			EnvBiasWeight: 0.05, EnvSeed: uint64(id) + 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen := part.Client(id)
		var acc metrics.Accumulator
		for round := 0; round < 4; round++ {
			if err := client.BeginRound(); err != nil {
				log.Fatal(err)
			}
			for f := 0; f < 150; f++ {
				smp := gen.Next()
				res := client.Infer(smp)
				acc.Record(metrics.Obs{
					LatencyMs: res.LatencyMs, Correct: res.Pred == smp.Class, Hit: res.Hit,
				})
			}
			if err := client.EndRound(); err != nil {
				log.Fatal(err)
			}
		}
		s := acc.Summary()
		fmt.Printf("sensor %d: %.2f ms/clip (edge-only %.2f), accuracy %.2f%%, hits %.1f%%\n",
			id, s.AvgLatencyMs, arch.TotalLatencyMs(), 100*s.Accuracy, 100*s.HitRatio)
		_ = client.Close()
		_ = coord.Close()
	}
	allocs, merges := srv.Stats()
	fmt.Printf("server: %d allocations, %d global-cache merges\n", allocs, merges)
}
