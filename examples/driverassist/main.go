// Driver assistance: long-tail traffic scenes (normal driving dominates,
// rare events form the tail) under a hard service-level objective — the
// paper's §I example: response latency within 80 ms and bounded accuracy
// loss. The example verifies the SLO against both CoCa and the edge-only
// configuration.
package main

import (
	"fmt"
	"log"

	"coca"
)

func main() {
	const (
		sloLatencyMs  = 30.0 // per-frame budget on this (virtual) platform
		sloMaxLossPct = 3.0
	)
	fmt.Println("driver assistance: ResNet152, long-tail ImageNet-100 (ρ=90), 6 vehicles")

	sys, err := coca.NewSystem(coca.Options{
		Model:   "ResNet152",
		Dataset: "ImageNet-100",

		NumClients:   6,
		Rounds:       8,
		WarmupRounds: 2,

		LongTailRho: 90,
		NonIIDLevel: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	// The dataset's calibrated full-model accuracy is the loss baseline.
	const edgeAccuracy = 0.8207
	lossPct := 100 * (edgeAccuracy - report.Accuracy)

	fmt.Printf("edge-only:  %.2f ms/frame\n", report.EdgeOnlyLatencyMs)
	fmt.Printf("with CoCa:  %.2f ms/frame (p95 %.2f), accuracy %.2f%% (loss %.2f%%), hits %.1f%%\n",
		report.AvgLatencyMs, report.P95LatencyMs, 100*report.Accuracy, lossPct, 100*report.HitRatio)

	pass := true
	if report.AvgLatencyMs > sloLatencyMs {
		fmt.Printf("✗ latency SLO violated: %.2f > %.2f ms\n", report.AvgLatencyMs, sloLatencyMs)
		pass = false
	} else {
		fmt.Printf("✓ latency SLO met: %.2f ≤ %.2f ms\n", report.AvgLatencyMs, sloLatencyMs)
	}
	if lossPct > sloMaxLossPct {
		fmt.Printf("✗ accuracy SLO violated: loss %.2f%% > %.1f%%\n", lossPct, sloMaxLossPct)
		pass = false
	} else {
		fmt.Printf("✓ accuracy SLO met: loss %.2f%% ≤ %.1f%%\n", lossPct, sloMaxLossPct)
	}
	if !pass {
		fmt.Println("SLO check failed — tune Theta/Budget or reduce fleet load")
	}
}
