// Quickstart: a 4-client CoCa deployment on the simulated ResNet101 ×
// UCF101-50 universe — the paper's reference configuration — printing the
// headline latency/accuracy result.
package main

import (
	"fmt"
	"log"

	"coca"
)

func main() {
	sys, err := coca.NewSystem(coca.Options{
		Model:   "ResNet101",
		Dataset: "UCF101",
		Classes: 50,

		NumClients:   4,
		Rounds:       8,
		WarmupRounds: 2,

		// Mild long-tail popularity and non-IID clients, as in real
		// camera fleets.
		LongTailRho: 10,
		NonIIDLevel: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CoCa quickstart —", report)
	fmt.Printf("latency reduction vs edge-only: %.1f%%\n", 100*report.LatencyReduction())
	for _, c := range report.PerClient {
		fmt.Printf("  client %d: %.2f ms, accuracy %.2f%%, hit ratio %.1f%%\n",
			c.ID, c.AvgLatencyMs, 100*c.Accuracy, 100*c.HitRatio)
	}
}
