// Federated edge fleet via the public serving API: three coca.Serve
// servers on loopback, each listing the other two in
// Options.Federation.Peers, form a full-mesh federation — every server
// gossips global-cache cell deltas (and class-frequency increments) to
// its peers on the sync cadence, so a class cached by one server's
// clients accelerates every other server's clients. Twelve coca.Dial
// clients split 4/4/4 across the servers and run their rounds
// concurrently; the fleet-wide workload partition is the same one a
// single-server deployment would use, carved by client id.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"coca"
)

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them, so every server can name its peers before any of them is up
// (PeerSet dials lazily and retries, so start order does not matter).
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return addrs, nil
}

func main() {
	ctx := context.Background()
	const (
		servers          = 3
		clientsPerServer = 4
		syncInterval     = 50 * time.Millisecond
	)
	opts := coca.Options{
		Model: "ResNet50", Dataset: "UCF101", Classes: 20,
		NumClients: servers * clientsPerServer,
		Rounds:     8, RoundFrames: 100, Budget: 80, Seed: 2,
		NonIIDLevel: 4,
	}

	addrs, err := freeAddrs(servers)
	if err != nil {
		log.Fatal(err)
	}
	srvs := make([]*coca.Server, servers)
	for i := 0; i < servers; i++ {
		o := opts
		fed := &coca.FederationOptions{NodeID: i, SyncInterval: syncInterval}
		for j, a := range addrs {
			if j != i {
				fed.Peers = append(fed.Peers, a)
			}
		}
		o.Federation = fed
		srv, err := coca.Serve(ctx, addrs[i], o)
		if err != nil {
			log.Fatal(err)
		}
		srvs[i] = srv
		fmt.Printf("federation: server %d serving on %s, syncing with %v\n", i, srv.Addr(), fed.Peers)
	}

	// Dial the fleet: client k attaches to server k/clientsPerServer.
	// Heap allocations across the whole serving window are sampled so the
	// example doubles as a smoke check of the pooled wire path: the
	// printed allocs/op (per client inference) collapses when the codec
	// or server tier regresses into per-message allocation.
	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	var wg sync.WaitGroup
	for id := 0; id < opts.NumClients; id++ {
		cl, err := coca.Dial(ctx, addrs[id/clientsPerServer], id, opts)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id int, cl *coca.Client) {
			defer wg.Done()
			defer cl.Close()
			rep, err := cl.Run(ctx, 0)
			if err != nil {
				log.Printf("client %d: %v", id, err)
				return
			}
			fmt.Printf("client %2d (server %d): %s\n", id, id/clientsPerServer, rep)
		}(id, cl)
	}
	wg.Wait()
	// Give every server a couple of sync ticks past the last upload so
	// the final round's deltas travel before the stats print.
	time.Sleep(3 * syncInterval)

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	for i, srv := range srvs {
		allocs, merges, sessions := srv.Stats()
		sync := srv.SyncStats()
		fmt.Printf("server %d: %d allocations, %d merges, %d peer merges, %d open sessions; %d sync rounds, %d cells out (%.1f KiB), %d in (%.1f KiB)\n",
			i, allocs, merges, srv.PeerMerges(), sessions, sync.Syncs,
			sync.CellsSent, float64(sync.BytesSent)/1024,
			sync.CellsRecv, float64(sync.BytesRecv)/1024)
		for _, p := range sync.Peers {
			fmt.Printf("  peer %d: %s, %d syncs, sent %d cells (resent %d), recv %d\n",
				p.ID, p.State, p.Syncs, p.CellsSent, p.CellsResent, p.CellsRecv)
		}
	}

	inferences := uint64(opts.NumClients) * uint64(opts.Rounds) * uint64(opts.RoundFrames)
	var bytesOut, bytesIn int64
	for _, srv := range srvs {
		st := srv.SyncStats()
		bytesOut += st.BytesSent
		bytesIn += st.BytesRecv
	}
	fmt.Printf("fleet: %.1f allocs/op over %d inferences (process-wide), sync traffic %.1f KiB out / %.1f KiB in\n",
		float64(msAfter.Mallocs-msBefore.Mallocs)/float64(inferences), inferences,
		float64(bytesOut)/1024, float64(bytesIn)/1024)

	for i, srv := range srvs {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("server %d shutdown: %v", i, err)
		}
		cancel()
	}
	fmt.Println("federation: fleet shut down cleanly")
}
