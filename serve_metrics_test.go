package coca

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"coca/internal/telemetry"
)

// TestMetricsExpositionTracksWorkload drives a wire fleet through the
// public API and asserts the telemetry tier saw it: the default-registry
// counters advance by at least the workload's known floor, the
// Prometheus /metrics page renders those series with matching values,
// and the trace sink records the session lifecycle. This is the
// in-process twin of the CI metrics-smoke job.
func TestMetricsExpositionTracksWorkload(t *testing.T) {
	before := telemetry.Snapshot()

	var traceBuf bytes.Buffer
	telemetry.SetTracer(telemetry.NewTracer(&traceBuf))
	defer telemetry.SetTracer(nil)

	ctx := context.Background()
	srv, clients, err := ServeAndDial(ctx, serveOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			_, errs[i] = cl.Run(ctx, 0)
		}(i, cl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// serveOpts is 3 clients x 2 rounds: at least 3 opens+closes and 6
	// allocations/merges must have landed in the global registry.
	after := telemetry.Snapshot()
	grew := func(name string, min float64) {
		t.Helper()
		if d := after.Value(name) - before.Value(name); d < min {
			t.Errorf("%s grew by %v over the workload, want >= %v", name, d, min)
		}
	}
	grew("coca_core_session_opens_total", 3)
	grew("coca_core_session_closes_total", 3)
	grew("coca_core_allocations_total", 6)
	grew("coca_core_upload_merges_total", 6)
	if open := after.Value("coca_core_sessions_open") - before.Value("coca_core_sessions_open"); open != 0 {
		t.Errorf("coca_core_sessions_open drifted by %v across a closed workload", open)
	}

	// Scrape the exposition page and cross-check it against the snapshot.
	rec := httptest.NewRecorder()
	telemetry.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "# TYPE coca_core_allocations_total counter") {
		t.Fatalf("/metrics missing TYPE header for allocations:\n%s", body)
	}
	scraped := -1.0
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "coca_core_allocations_total "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			scraped = f
		}
	}
	if scraped < after.Value("coca_core_allocations_total") {
		t.Errorf("scraped allocations %v behind snapshot %v (counter went backwards?)",
			scraped, after.Value("coca_core_allocations_total"))
	}

	// The tracer saw the same lifecycle the counters did.
	trace := traceBuf.String()
	for _, ev := range []string{`"event":"session_open"`, `"event":"session_close"`} {
		if !strings.Contains(trace, ev) {
			t.Errorf("trace log missing %s; got:\n%s", ev, trace)
		}
	}
}
