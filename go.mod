module coca

go 1.24
